"""The system-wide execution-backend switch.

Every executor and generator in the package takes ``backend=None`` and
resolves it here, so one module-level default decides whether the whole
system runs columnar (``"numpy"``: vectorized routing, array payloads
in the simulator, vectorized local joins) or tuple-at-a-time
(``"tuples"``: the original, obviously-correct reference path).  The
two are bit-identical in answers and per-server/per-round loads -- the
property suites in ``tests/hypercube/test_backends.py`` and
``tests/multiround/test_executor_backends.py`` enforce it -- so the
default is the fast one, and the reference path stays one flag away::

    import repro
    repro.set_default_backend("tuples")   # system-wide ground-truth mode
    ...
    repro.set_default_backend("numpy")    # back to fast-by-default

Generators are deliberately *not* coupled to the execution switch:
their two streams (``"python"`` / ``"numpy"``) draw different --
equally distributed -- instances for the same seed, so if switching
engines also switched the generator stream, regenerating the same
database under ``set_default_backend("tuples")`` would silently change
the data and masquerade as a backend bit-identity violation.  They
default to the vectorized ``"numpy"`` stream
(:data:`DEFAULT_GENERATOR_BACKEND`) and take an explicit ``backend=``
per call.

This module is a leaf: it imports nothing from :mod:`repro`, so any
submodule may consult it without import cycles.
"""

from __future__ import annotations

import logging
import os
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator, Literal

logger = logging.getLogger("repro.config")

Backend = Literal["tuples", "numpy"]
GeneratorBackend = Literal["python", "numpy"]
PoolKind = Literal["serial", "thread", "process"]

#: The shipped default: columnar execution everywhere.
DEFAULT_BACKEND: Backend = "numpy"

#: The generator-stream default: vectorized draws, independent of the
#: execution switch (see the module docstring for why).
DEFAULT_GENERATOR_BACKEND: GeneratorBackend = "numpy"

_EXECUTION_BACKENDS = ("tuples", "numpy")
_GENERATOR_BACKENDS = ("python", "numpy")

_default_backend: Backend = DEFAULT_BACKEND


def default_backend() -> Backend:
    """The currently active system-wide execution backend."""
    return _default_backend


def set_default_backend(backend: str) -> Backend:
    """Set the system-wide default backend; returns the previous one.

    Affects every executor and generator called with ``backend=None``
    (the HyperCube driver, the skew-aware star/triangle algorithms, the
    multi-round plan executor, and the matching/zipf generators).
    """
    global _default_backend
    if backend not in _EXECUTION_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r} (expected one of {_EXECUTION_BACKENDS})"
        )
    previous = _default_backend
    _default_backend = backend  # type: ignore[assignment]
    return previous


@contextmanager
def use_backend(backend: str) -> Iterator[Backend]:
    """Temporarily override the system-wide default backend.

    The exception-safe form of :func:`set_default_backend` for scoped
    overrides (tests, one ground-truth block inside a columnar
    program)::

        with repro.config.use_backend("tuples"):
            reference = run_hypercube(q, db, p)   # tuple path
        fast = run_hypercube(q, db, p)            # back to the default

    Restores the previous default on exit even when the body raises.
    Yields the backend now in force.
    """
    previous = set_default_backend(backend)
    try:
        yield _default_backend
    finally:
        set_default_backend(previous)


def resolve_backend(backend: str | None) -> Backend:
    """An explicit execution backend, or the system-wide default."""
    if backend is None:
        return _default_backend
    if backend not in _EXECUTION_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r} (expected one of {_EXECUTION_BACKENDS})"
        )
    return backend  # type: ignore[return-value]


_POOL_KINDS = ("serial", "thread", "process")

#: The worker-pool default when neither a run nor the environment picks
#: one: the engines stay serial (zero overhead, the historical
#: behavior); callers opt into thread/process fan-out per run, per
#: session, or system-wide (``REPRO_DEFAULT_POOL``).
DEFAULT_POOL: PoolKind = "serial"


def _pool_from_env() -> PoolKind:
    value = os.environ.get("REPRO_DEFAULT_POOL")
    if value is None:
        return DEFAULT_POOL
    if value not in _POOL_KINDS:
        raise ValueError(
            f"REPRO_DEFAULT_POOL={value!r} is not one of {_POOL_KINDS}"
        )
    return value  # type: ignore[return-value]


_default_pool: PoolKind = _pool_from_env()


def default_pool() -> PoolKind:
    """The currently active system-wide worker-pool kind."""
    return _default_pool


def set_default_pool(pool: str) -> PoolKind:
    """Set the system-wide default pool kind; returns the previous one.

    Affects every executor and :meth:`repro.session.Session.run_many`
    batch running with ``pool=None``.  The environment variable
    ``REPRO_DEFAULT_POOL`` seeds this default at import time (the knob
    CI uses to run the whole suite through the process pool).
    """
    global _default_pool
    if pool not in _POOL_KINDS:
        raise ValueError(
            f"unknown pool kind {pool!r} (expected one of {_POOL_KINDS})"
        )
    previous = _default_pool
    _default_pool = pool  # type: ignore[assignment]
    return previous


@contextmanager
def use_pool(pool: str) -> Iterator[PoolKind]:
    """Temporarily override the system-wide default pool kind.

    The exception-safe scoped form of :func:`set_default_pool`, exactly
    like :func:`use_backend` for the execution backend.
    """
    previous = set_default_pool(pool)
    try:
        yield _default_pool
    finally:
        set_default_pool(previous)


def resolve_pool(pool: str | None) -> PoolKind:
    """An explicit pool kind, or the system-wide default."""
    if pool is None:
        return _default_pool
    if pool not in _POOL_KINDS:
        raise ValueError(
            f"unknown pool kind {pool!r} (expected one of {_POOL_KINDS})"
        )
    return pool  # type: ignore[return-value]


@dataclass(frozen=True)
class MachineSpec:
    """Per-server relative speeds (and optional capacities) of a cluster.

    The paper's MPC model assumes ``p`` identical servers; real clusters
    mix machine generations.  A :class:`MachineSpec` describes one
    heterogeneous cluster: ``speeds[s]`` is server ``s``'s relative
    processing speed (any positive unit -- only ratios matter), and
    ``capacities[s]``, when given, is that server's own per-round
    receive cap in bits (tightening any global ``capacity_bits``).

    The uniform spec (:meth:`uniform`, or ``machines=None`` everywhere)
    is the degenerate default and is bit-identical to the homogeneous
    code paths: equal speeds route through the unweighted ``% buckets``
    hash and absent capacities leave the global cap comparisons
    untouched.

    Skew executors allocate *block* servers beyond ``p`` (the star
    algorithm's heavy blocks, the triangle algorithm's case-1/case-2
    grids); those logical servers live on the same physical machines,
    so :meth:`speed` and :meth:`capacity` extend modularly
    (``speeds[s % p]``).
    """

    speeds: tuple[float, ...]
    capacities: tuple[float | None, ...] | None = None

    def __post_init__(self) -> None:
        if not self.speeds:
            raise ValueError("MachineSpec needs at least one server")
        object.__setattr__(self, "speeds", tuple(float(v) for v in self.speeds))
        for v in self.speeds:
            if not (v > 0.0) or v != v or v == float("inf"):
                raise ValueError(f"machine speeds must be positive finite, got {v!r}")
        if self.capacities is not None:
            caps = tuple(
                None if c is None else float(c) for c in self.capacities
            )
            object.__setattr__(self, "capacities", caps)
            if len(caps) != len(self.speeds):
                raise ValueError(
                    f"capacities has {len(caps)} entries for "
                    f"{len(self.speeds)} servers"
                )
            for c in caps:
                if c is not None and c <= 0.0:
                    raise ValueError("machine capacities must be positive")

    @classmethod
    def uniform(cls, p: int, speed: float = 1.0) -> "MachineSpec":
        """The degenerate homogeneous cluster: ``p`` servers at ``speed``."""
        if p < 1:
            raise ValueError("p must be >= 1")
        return cls(speeds=(float(speed),) * p)

    @classmethod
    def parse(cls, text: str) -> "MachineSpec":
        """Parse a CLI spec like ``"4x1,4x2"`` (four 1x plus four 2x).

        Groups separated by ``,`` or ``+``; each group is
        ``COUNTxSPEED`` or a bare ``SPEED`` (count 1).  The inverse of
        :meth:`describe`, whose ``"4x1+4x2"`` form parses back exactly.
        """
        speeds: list[float] = []
        for group in text.replace("+", ",").split(","):
            group = group.strip()
            if not group:
                raise ValueError(f"empty group in machine spec {text!r}")
            if "x" in group:
                count_text, _, speed_text = group.partition("x")
                try:
                    count = int(count_text)
                    speed = float(speed_text)
                except ValueError:
                    raise ValueError(
                        f"bad machine group {group!r} (expected COUNTxSPEED)"
                    ) from None
                if count < 1:
                    raise ValueError(f"machine group {group!r} has count < 1")
            else:
                count, speed = 1, float(group)
            speeds.extend([speed] * count)
        return cls(speeds=tuple(speeds))

    def cycle_to(self, p: int) -> "MachineSpec":
        """This spec's speed pattern repeated/truncated to ``p`` servers.

        How the ``REPRO_DEFAULT_MACHINES`` pattern (e.g. ``"1,4"``)
        applies to runs of any ``p``: server ``s`` gets the pattern's
        ``s % len`` entry.
        """
        if p < 1:
            raise ValueError("p must be >= 1")
        n = len(self.speeds)
        speeds = tuple(self.speeds[s % n] for s in range(p))
        caps = None
        if self.capacities is not None:
            caps = tuple(self.capacities[s % n] for s in range(p))
        return MachineSpec(speeds=speeds, capacities=caps)

    @property
    def p(self) -> int:
        return len(self.speeds)

    @property
    def is_uniform(self) -> bool:
        """All speeds equal: routing degenerates to the unweighted hash."""
        return min(self.speeds) == max(self.speeds)

    @property
    def total_speed(self) -> float:
        return sum(self.speeds)

    @property
    def min_speed(self) -> float:
        return min(self.speeds)

    @property
    def max_speed(self) -> float:
        return max(self.speeds)

    def speed(self, server: int) -> float:
        """Server ``server``'s speed, extended modularly past ``p``."""
        return self.speeds[server % len(self.speeds)]

    def capacity(self, server: int) -> float | None:
        """Server ``server``'s own capacity cap (None: no per-machine cap)."""
        if self.capacities is None:
            return None
        return self.capacities[server % len(self.speeds)]

    def weights(self, count: int | None = None) -> tuple[float, ...]:
        """Speed-proportional routing weights over ``count`` servers.

        Normalized to sum 1; servers beyond ``p`` take the modular
        extension's speed.
        """
        if count is None:
            count = len(self.speeds)
        raw = [self.speed(s) for s in range(count)]
        total = sum(raw)
        return tuple(v / total for v in raw)

    def speed_classes(self) -> dict[float, tuple[int, ...]]:
        """Speed value -> the servers running at it (ascending speeds)."""
        classes: dict[float, list[int]] = {}
        for s, v in enumerate(self.speeds):
            classes.setdefault(v, []).append(s)
        return {v: tuple(classes[v]) for v in sorted(classes)}

    def describe(self) -> str:
        """The compact run-length form, e.g. ``"4x1+4x2"``."""

        def fmt(v: float) -> str:
            return f"{v:g}"

        groups: list[tuple[float, int]] = []
        for v in self.speeds:
            if groups and groups[-1][0] == v:
                groups[-1] = (v, groups[-1][1] + 1)
            else:
                groups.append((v, 1))
        return "+".join(
            fmt(v) if n == 1 else f"{n}x{fmt(v)}" for v, n in groups
        )


#: The machines default when neither a run nor the environment supplies
#: one: ``None`` -- the homogeneous cluster, exactly the historical
#: behavior.
_default_machines: "MachineSpec | None" = None


def _machines_from_env() -> "MachineSpec | None":
    value = os.environ.get("REPRO_DEFAULT_MACHINES")
    if value is None:
        return None
    return MachineSpec.parse(value)


_default_machines = _machines_from_env()


def default_machines() -> "MachineSpec | None":
    """The system-wide default machine *pattern* (None: homogeneous)."""
    return _default_machines


def set_default_machines(machines: "MachineSpec | str | None") -> "MachineSpec | None":
    """Set the system-wide machine pattern; returns the previous one.

    The pattern is cycled to each run's ``p``
    (:meth:`MachineSpec.cycle_to`), so ``"1,4"`` alternates slow/fast
    servers at any cluster size.  The environment variable
    ``REPRO_DEFAULT_MACHINES`` seeds this default at import time (the
    knob CI uses to rerun whole suites on a heterogeneous cluster).
    """
    global _default_machines
    if isinstance(machines, str):
        machines = MachineSpec.parse(machines)
    if machines is not None and not isinstance(machines, MachineSpec):
        raise TypeError(f"expected MachineSpec, spec string or None, got {machines!r}")
    previous = _default_machines
    _default_machines = machines
    return previous


@contextmanager
def use_machines(machines: "MachineSpec | str | None") -> Iterator["MachineSpec | None"]:
    """Temporarily override the system-wide machine pattern.

    The exception-safe scoped form of :func:`set_default_machines`,
    exactly like :func:`use_pool` for the worker pool.
    """
    previous = set_default_machines(machines)
    try:
        yield _default_machines
    finally:
        set_default_machines(previous)


def resolve_machines(
    machines: "MachineSpec | None", p: int | None
) -> "MachineSpec | None":
    """An explicit spec, or the system-wide pattern cycled to ``p``.

    An explicit spec must match ``p`` exactly when ``p`` is known; the
    default *pattern* adapts to any ``p``.  Returns None for the
    homogeneous cluster.
    """
    if machines is not None:
        if p is not None and machines.p != p:
            raise ValueError(
                f"MachineSpec describes {machines.p} servers but p={p}"
            )
        return machines
    if _default_machines is not None and p is not None:
        return _default_machines.cycle_to(p)
    return _default_machines


_HASH_METHODS = ("splitmix64", "blake2b")
_OVERFLOW_MODES = ("fail", "drop")


@dataclass(frozen=True)
class ExecutionSettings:
    """The per-run execution knobs every executor shares.

    One value object carries the five settings that used to be
    copy-pasted (and to drift) across every executor signature:
    the engine switch, the per-server per-round capacity cap and its
    overflow policy, the routing PRF, and the streaming granularity.
    :meth:`resolve` is the single place the backend/storage/chunk-size
    interaction is decided; the executor cores receive an
    already-resolved instance and never re-derive it.
    """

    backend: Backend | None = None
    capacity_bits: float | None = None
    on_overflow: Literal["fail", "drop"] = "fail"
    hash_method: str = "splitmix64"
    chunk_rows: int | None = None
    pool: PoolKind | None = None
    max_workers: int | None = None
    machines: MachineSpec | None = None

    def __post_init__(self) -> None:
        if self.machines is not None and not isinstance(self.machines, MachineSpec):
            raise TypeError(
                f"machines must be a MachineSpec or None, got {self.machines!r}"
            )
        if self.backend is not None and self.backend not in _EXECUTION_BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r} "
                f"(expected one of {_EXECUTION_BACKENDS})"
            )
        if self.on_overflow not in _OVERFLOW_MODES:
            raise ValueError("on_overflow must be 'fail' or 'drop'")
        if self.hash_method not in _HASH_METHODS:
            raise ValueError(
                f"unknown hash_method {self.hash_method!r} "
                f"(expected one of {_HASH_METHODS})"
            )
        if self.chunk_rows is not None and self.chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        if self.pool is not None and self.pool not in _POOL_KINDS:
            raise ValueError(
                f"unknown pool kind {self.pool!r} "
                f"(expected one of {_POOL_KINDS})"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")

    def resolve(
        self, storage: object | None = None, p: int | None = None
    ) -> "ExecutionSettings":
        """A copy with backend, chunk granularity, pool and machines pinned.

        ``backend=None`` resolves to the system-wide default
        (:func:`default_backend`); an attached storage manager demands
        the columnar engine and supplies its own ``chunk_rows`` when
        the caller gave none.  ``pool=None`` resolves to the
        system-wide default (:func:`default_pool`); the tuple backend
        has no vectorized per-server task bodies to fan out, so it
        always resolves to the serial pool.  ``machines=None`` resolves
        to the system-wide pattern cycled to ``p``
        (:func:`resolve_machines`); an explicit spec must match ``p``.
        This is the one shared resolution step behind
        ``run_hypercube``/``run_star_skew``/``run_triangle_skew``/
        ``run_plan`` and :meth:`repro.session.Session.run`.
        """
        backend = resolve_backend(self.backend)
        if storage is not None and backend != "numpy":
            raise ValueError(
                "out-of-core execution (storage=...) requires the numpy "
                "backend"
            )
        chunk_rows = self.chunk_rows
        if chunk_rows is None and storage is not None:
            chunk_rows = storage.chunk_rows  # type: ignore[attr-defined]
        pool = resolve_pool(self.pool)
        if backend != "numpy" and pool != "serial":
            # Warn only when the caller asked for parallelism by name;
            # a defaulted pool silently resolving serial is expected.
            if self.pool is not None:
                logger.warning(
                    "the %s backend has no vectorized task bodies; "
                    "forcing pool=%r to 'serial'", backend, pool,
                )
            pool = "serial"
        machines = resolve_machines(self.machines, p)
        return replace(
            self, backend=backend, chunk_rows=chunk_rows, pool=pool,
            machines=machines,
        )


def resolve_generator_backend(backend: str | None) -> GeneratorBackend:
    """An explicit generator stream, or :data:`DEFAULT_GENERATOR_BACKEND`.

    Deliberately independent of :func:`set_default_backend`: the
    streams draw different instances per seed, and the same database
    must be reproducible regardless of the execution engine.
    """
    if backend is None:
        return DEFAULT_GENERATOR_BACKEND
    if backend not in _GENERATOR_BACKENDS:
        raise ValueError(
            f"unknown generator backend {backend!r} "
            f"(expected one of {_GENERATOR_BACKENDS})"
        )
    return backend  # type: ignore[return-value]
