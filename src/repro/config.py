"""The system-wide execution-backend switch.

Every executor and generator in the package takes ``backend=None`` and
resolves it here, so one module-level default decides whether the whole
system runs columnar (``"numpy"``: vectorized routing, array payloads
in the simulator, vectorized local joins) or tuple-at-a-time
(``"tuples"``: the original, obviously-correct reference path).  The
two are bit-identical in answers and per-server/per-round loads -- the
property suites in ``tests/hypercube/test_backends.py`` and
``tests/multiround/test_executor_backends.py`` enforce it -- so the
default is the fast one, and the reference path stays one flag away::

    import repro
    repro.set_default_backend("tuples")   # system-wide ground-truth mode
    ...
    repro.set_default_backend("numpy")    # back to fast-by-default

Generators are deliberately *not* coupled to the execution switch:
their two streams (``"python"`` / ``"numpy"``) draw different --
equally distributed -- instances for the same seed, so if switching
engines also switched the generator stream, regenerating the same
database under ``set_default_backend("tuples")`` would silently change
the data and masquerade as a backend bit-identity violation.  They
default to the vectorized ``"numpy"`` stream
(:data:`DEFAULT_GENERATOR_BACKEND`) and take an explicit ``backend=``
per call.

This module is a leaf: it imports nothing from :mod:`repro`, so any
submodule may consult it without import cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Literal

Backend = Literal["tuples", "numpy"]
GeneratorBackend = Literal["python", "numpy"]

#: The shipped default: columnar execution everywhere.
DEFAULT_BACKEND: Backend = "numpy"

#: The generator-stream default: vectorized draws, independent of the
#: execution switch (see the module docstring for why).
DEFAULT_GENERATOR_BACKEND: GeneratorBackend = "numpy"

_EXECUTION_BACKENDS = ("tuples", "numpy")
_GENERATOR_BACKENDS = ("python", "numpy")

_default_backend: Backend = DEFAULT_BACKEND


def default_backend() -> Backend:
    """The currently active system-wide execution backend."""
    return _default_backend


def set_default_backend(backend: str) -> Backend:
    """Set the system-wide default backend; returns the previous one.

    Affects every executor and generator called with ``backend=None``
    (the HyperCube driver, the skew-aware star/triangle algorithms, the
    multi-round plan executor, and the matching/zipf generators).
    """
    global _default_backend
    if backend not in _EXECUTION_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r} (expected one of {_EXECUTION_BACKENDS})"
        )
    previous = _default_backend
    _default_backend = backend  # type: ignore[assignment]
    return previous


@contextmanager
def use_backend(backend: str) -> Iterator[Backend]:
    """Temporarily override the system-wide default backend.

    The exception-safe form of :func:`set_default_backend` for scoped
    overrides (tests, one ground-truth block inside a columnar
    program)::

        with repro.config.use_backend("tuples"):
            reference = run_hypercube(q, db, p)   # tuple path
        fast = run_hypercube(q, db, p)            # back to the default

    Restores the previous default on exit even when the body raises.
    Yields the backend now in force.
    """
    previous = set_default_backend(backend)
    try:
        yield _default_backend
    finally:
        set_default_backend(previous)


def resolve_backend(backend: str | None) -> Backend:
    """An explicit execution backend, or the system-wide default."""
    if backend is None:
        return _default_backend
    if backend not in _EXECUTION_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r} (expected one of {_EXECUTION_BACKENDS})"
        )
    return backend  # type: ignore[return-value]


def resolve_generator_backend(backend: str | None) -> GeneratorBackend:
    """An explicit generator stream, or :data:`DEFAULT_GENERATOR_BACKEND`.

    Deliberately independent of :func:`set_default_backend`: the
    streams draw different instances per seed, and the same database
    must be reproducible regardless of the execution engine.
    """
    if backend is None:
        return DEFAULT_GENERATOR_BACKEND
    if backend not in _GENERATOR_BACKENDS:
        raise ValueError(
            f"unknown generator backend {backend!r} "
            f"(expected one of {_GENERATOR_BACKENDS})"
        )
    return backend  # type: ignore[return-value]
