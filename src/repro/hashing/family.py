"""Seeded PRF hash functions standing in for perfectly random hashing.

A :class:`HashFunction` maps integers to ``[0, buckets)``.  Two
interchangeable implementations share the same ``(seed, salt, buckets)``
determinism contract:

* ``"splitmix64"`` (the default): a keyed splitmix64 finalizer over
  64-bit arithmetic.  It is a strong statistical mixer, cheap to compute
  scalar-at-a-time, and -- crucially for the columnar execution backend
  -- vectorizes over whole ``uint64`` columns via
  :meth:`HashFunction.hash_array`.
* ``"blake2b"``: the original keyed BLAKE2b digest, kept behind the
  ``method`` flag as a cryptographic-strength cross-check.  Its
  vectorized path hashes each *distinct* value once and scatters the
  results, so it remains usable (if slower) from the columnar backend.

Distinct ``(seed, salt)`` pairs give (for all statistical purposes)
independent functions, matching the paper's assumption of independent
perfectly random hash functions ``h_i``.  Scalar calls may memoize
results in a bounded per-function cache (``cache_size``; the vectorized
path never populates it).

:class:`GridPartitioner` composes one hash function per dimension into
the HyperCube destination map: a tuple ``(a_1, ..., a_r)`` lands in bin
``(h_1(a_1), ..., h_r(a_r))`` of the share grid ``[p_1] x ... x [p_r]``
(Lemma 3.2 / Eq. 9).
"""

from __future__ import annotations

import hashlib
import struct
from typing import Literal, Sequence

import numpy as np

HashMethod = Literal["splitmix64", "blake2b"]

DEFAULT_CACHE_SIZE = 65_536

_MASK64 = 0xFFFFFFFFFFFFFFFF
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def _mix64(x: int) -> int:
    """The splitmix64 finalizer on a Python int (mod 2**64)."""
    x = (x + _GOLDEN) & _MASK64
    x = ((x ^ (x >> 30)) * _MIX1) & _MASK64
    x = ((x ^ (x >> 27)) * _MIX2) & _MASK64
    return x ^ (x >> 31)


def _mix64_array(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer over a ``uint64`` array (wraps mod 2**64)."""
    x = x + np.uint64(_GOLDEN)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(_MIX1)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(_MIX2)
    return x ^ (x >> np.uint64(31))


def derive_seed(seed: int, salt: int) -> int:
    """Mix a ``(seed, salt)`` pair into one 64-bit family seed.

    Affine schemes like ``seed * K + salt`` are hazardous: ``seed=0``
    collapses onto the bare salt, and distinct ``(seed, salt)`` pairs
    collide whenever their affine combinations coincide.  Here each
    component passes through its own splitmix64 round before being
    folded in, so distinct pairs produce independent-looking seeds
    (collisions only at the 2^-64 level of the mixer itself).
    """
    acc = _mix64((seed & _MASK64) ^ _GOLDEN)
    return _mix64(acc ^ (salt & _MASK64))


class HashFunction:
    """A deterministic pseudo-random function ``int -> [0, buckets)``."""

    __slots__ = ("seed", "salt", "buckets", "method", "cache_size", "_key",
                 "_mixkey", "_cache")

    def __init__(
        self,
        seed: int,
        salt: int,
        buckets: int,
        method: HashMethod = "splitmix64",
        cache_size: int = DEFAULT_CACHE_SIZE,
    ):
        if buckets < 1:
            raise ValueError("need at least one bucket")
        if method not in ("splitmix64", "blake2b"):
            raise ValueError(f"unknown hash method {method!r}")
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self.seed = seed
        self.salt = salt
        self.buckets = buckets
        self.method = method
        self.cache_size = cache_size
        self._key = struct.pack(">qq", seed & 0x7FFFFFFFFFFFFFFF, salt)
        # Two mixing rounds decorrelate (seed, salt) pairs before the
        # per-value round, so nearby seeds give independent functions.
        self._mixkey = _mix64(_mix64(seed & _MASK64) ^ ((salt * _GOLDEN) & _MASK64))
        self._cache: dict[int, int] = {}

    # ------------------------------------------------------------ scalar path

    def __call__(self, value: int) -> int:
        if self.method == "splitmix64":
            # Pure arithmetic; a dict probe costs as much as the mix,
            # so the scalar splitmix path does not use the cache.
            return _mix64((value & _MASK64) ^ self._mixkey) % self.buckets
        cached = self._cache.get(value)
        if cached is not None:
            return cached
        out = self._blake2b_raw(value)
        if len(self._cache) < self.cache_size:
            self._cache[value] = out
        return out

    def _blake2b_raw(self, value: int) -> int:
        """One keyed BLAKE2b evaluation, bypassing the cache."""
        length = max(1, (value.bit_length() + 8) // 8)
        digest = hashlib.blake2b(
            value.to_bytes(length, "big", signed=True),
            key=self._key,
            digest_size=8,
        ).digest()
        return int.from_bytes(digest, "big") % self.buckets

    # -------------------------------------------------------- vectorized path

    def hash_array(self, values: np.ndarray) -> np.ndarray:
        """Hash a whole column at once; never populates the scalar cache.

        Agrees elementwise with :meth:`__call__` for both methods (the
        property tests cross-check this).  Accepts any integer dtype;
        returns ``int64`` bucket indices.
        """
        values = np.ascontiguousarray(values)
        if values.dtype.kind not in "iu":
            raise TypeError(f"hash_array needs an integer array, got {values.dtype}")
        if self.method == "splitmix64":
            # int64 -> uint64 wraps two's-complement, matching `& _MASK64`.
            x = values.astype(np.uint64) ^ np.uint64(self._mixkey)
            return (_mix64_array(x) % np.uint64(self.buckets)).astype(np.int64)
        # blake2b: hash each distinct value once, scatter via the inverse.
        uniq, inverse = np.unique(values, return_inverse=True)
        table = np.fromiter(
            (self._blake2b_raw(int(v)) for v in uniq),
            dtype=np.int64,
            count=len(uniq),
        )
        return table[inverse.reshape(values.shape)]

    def __repr__(self) -> str:
        return (
            f"HashFunction(seed={self.seed}, salt={self.salt}, "
            f"buckets={self.buckets}, method={self.method!r})"
        )


class HashFamily:
    """A seeded factory of independent hash functions.

    ``family.function(salt, buckets)`` returns the same function for the
    same arguments, and statistically independent functions for
    different salts -- the shared-randomness model of Section 2.1
    ("random bits are available to all servers").  ``method`` selects the
    implementation for every function produced by this family;
    ``cache_size`` bounds the per-function scalar memoization cache.
    """

    def __init__(
        self,
        seed: int = 0,
        method: HashMethod = "splitmix64",
        cache_size: int = DEFAULT_CACHE_SIZE,
    ):
        self.seed = seed
        self.method = method
        self.cache_size = cache_size

    def function(self, salt: int, buckets: int) -> HashFunction:
        return HashFunction(
            self.seed, salt, buckets, method=self.method, cache_size=self.cache_size
        )

    def functions(self, count: int, buckets: Sequence[int]) -> list[HashFunction]:
        """``count`` independent functions with per-index bucket counts."""
        if len(buckets) != count:
            raise ValueError("need one bucket count per function")
        return [self.function(i, b) for i, b in enumerate(buckets)]


class GridPartitioner:
    """HyperCube partitioning of tuples onto a share grid.

    Dimension ``i`` has ``shares[i]`` buckets and its own independent
    hash function.  ``bin_of`` maps a full tuple to its grid cell;
    ``destinations`` maps a *partial* tuple (some dimensions unknown) to
    all cells it must reach -- Eq. (9)'s destination subcube ``D(t)``.
    """

    def __init__(self, shares: Sequence[int], family: HashFamily | None = None):
        if any(s < 1 for s in shares):
            raise ValueError("shares must be >= 1")
        self.shares = tuple(int(s) for s in shares)
        family = family or HashFamily(0)
        self.functions = family.functions(len(self.shares), self.shares)

    @property
    def num_bins(self) -> int:
        out = 1
        for s in self.shares:
            out *= s
        return out

    @property
    def strides(self) -> tuple[int, ...]:
        """Row-major strides: ``linear_index(cell) = sum_i cell[i] * strides[i]``."""
        out = [1] * len(self.shares)
        for i in range(len(self.shares) - 2, -1, -1):
            out[i] = out[i + 1] * self.shares[i + 1]
        return tuple(out)

    def bin_of(self, values: Sequence[int]) -> tuple[int, ...]:
        if len(values) != len(self.shares):
            raise ValueError("tuple arity does not match grid dimension")
        return tuple(h(v) for h, v in zip(self.functions, values))

    def destinations(
        self, values: Sequence[int | None]
    ) -> list[tuple[int, ...]]:
        """All grid cells consistent with the known coordinates.

        ``None`` marks an unconstrained dimension; the result enumerates
        the destination subcube, of size ``prod of shares over unknown
        dimensions`` (the replication factor of the tuple).
        """
        if len(values) != len(self.shares):
            raise ValueError("tuple arity does not match grid dimension")
        cells: list[tuple[int, ...]] = [()]
        for dim, value in enumerate(values):
            if value is None:
                cells = [c + (b,) for c in cells for b in range(self.shares[dim])]
            else:
                h = self.functions[dim](value)
                cells = [c + (h,) for c in cells]
        return cells

    def linear_index(self, cell: Sequence[int]) -> int:
        """Row-major linearization of a grid cell to a server id."""
        out = 0
        for share, coordinate in zip(self.shares, cell):
            if not 0 <= coordinate < share:
                raise ValueError(f"cell {tuple(cell)} outside grid {self.shares}")
            out = out * share + coordinate
        return out
