"""Seeded PRF hash functions standing in for perfectly random hashing.

A :class:`HashFunction` maps integers to ``[0, buckets)`` via a keyed
BLAKE2b digest.  Distinct ``(seed, salt)`` pairs give (for all
statistical purposes) independent functions, matching the paper's
assumption of independent perfectly random hash functions ``h_i``.

:class:`GridPartitioner` composes one hash function per dimension into
the HyperCube destination map: a tuple ``(a_1, ..., a_r)`` lands in bin
``(h_1(a_1), ..., h_r(a_r))`` of the share grid ``[p_1] x ... x [p_r]``
(Lemma 3.2 / Eq. 9).
"""

from __future__ import annotations

import hashlib
import struct
from typing import Sequence


class HashFunction:
    """A deterministic pseudo-random function ``int -> [0, buckets)``."""

    __slots__ = ("seed", "salt", "buckets", "_key", "_cache")

    def __init__(self, seed: int, salt: int, buckets: int):
        if buckets < 1:
            raise ValueError("need at least one bucket")
        self.seed = seed
        self.salt = salt
        self.buckets = buckets
        self._key = struct.pack(">qq", seed & 0x7FFFFFFFFFFFFFFF, salt)
        self._cache: dict[int, int] = {}

    def __call__(self, value: int) -> int:
        cached = self._cache.get(value)
        if cached is not None:
            return cached
        length = max(1, (value.bit_length() + 8) // 8)
        digest = hashlib.blake2b(
            value.to_bytes(length, "big", signed=True),
            key=self._key,
            digest_size=8,
        ).digest()
        out = int.from_bytes(digest, "big") % self.buckets
        if len(self._cache) < 1_000_000:
            self._cache[value] = out
        return out

    def __repr__(self) -> str:
        return f"HashFunction(seed={self.seed}, salt={self.salt}, buckets={self.buckets})"


class HashFamily:
    """A seeded factory of independent hash functions.

    ``family.function(salt, buckets)`` returns the same function for the
    same arguments, and statistically independent functions for
    different salts -- the shared-randomness model of Section 2.1
    ("random bits are available to all servers").
    """

    def __init__(self, seed: int = 0):
        self.seed = seed

    def function(self, salt: int, buckets: int) -> HashFunction:
        return HashFunction(self.seed, salt, buckets)

    def functions(self, count: int, buckets: Sequence[int]) -> list[HashFunction]:
        """``count`` independent functions with per-index bucket counts."""
        if len(buckets) != count:
            raise ValueError("need one bucket count per function")
        return [self.function(i, b) for i, b in enumerate(buckets)]


class GridPartitioner:
    """HyperCube partitioning of tuples onto a share grid.

    Dimension ``i`` has ``shares[i]`` buckets and its own independent
    hash function.  ``bin_of`` maps a full tuple to its grid cell;
    ``destinations`` maps a *partial* tuple (some dimensions unknown) to
    all cells it must reach -- Eq. (9)'s destination subcube ``D(t)``.
    """

    def __init__(self, shares: Sequence[int], family: HashFamily | None = None):
        if any(s < 1 for s in shares):
            raise ValueError("shares must be >= 1")
        self.shares = tuple(int(s) for s in shares)
        family = family or HashFamily(0)
        self.functions = family.functions(len(self.shares), self.shares)

    @property
    def num_bins(self) -> int:
        out = 1
        for s in self.shares:
            out *= s
        return out

    def bin_of(self, values: Sequence[int]) -> tuple[int, ...]:
        if len(values) != len(self.shares):
            raise ValueError("tuple arity does not match grid dimension")
        return tuple(h(v) for h, v in zip(self.functions, values))

    def destinations(
        self, values: Sequence[int | None]
    ) -> list[tuple[int, ...]]:
        """All grid cells consistent with the known coordinates.

        ``None`` marks an unconstrained dimension; the result enumerates
        the destination subcube, of size ``prod of shares over unknown
        dimensions`` (the replication factor of the tuple).
        """
        if len(values) != len(self.shares):
            raise ValueError("tuple arity does not match grid dimension")
        cells: list[tuple[int, ...]] = [()]
        for dim, value in enumerate(values):
            if value is None:
                cells = [c + (b,) for c in cells for b in range(self.shares[dim])]
            else:
                h = self.functions[dim](value)
                cells = [c + (h,) for c in cells]
        return cells

    def linear_index(self, cell: Sequence[int]) -> int:
        """Row-major linearization of a grid cell to a server id."""
        out = 0
        for share, coordinate in zip(self.shares, cell):
            if not 0 <= coordinate < share:
                raise ValueError(f"cell {tuple(cell)} outside grid {self.shares}")
            out = out * share + coordinate
        return out
