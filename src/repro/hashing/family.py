"""Seeded PRF hash functions standing in for perfectly random hashing.

A :class:`HashFunction` maps integers to ``[0, buckets)``.  Two
interchangeable implementations share the same ``(seed, salt, buckets)``
determinism contract:

* ``"splitmix64"`` (the default): a keyed splitmix64 finalizer over
  64-bit arithmetic.  It is a strong statistical mixer, cheap to compute
  scalar-at-a-time, and -- crucially for the columnar execution backend
  -- vectorizes over whole ``uint64`` columns via
  :meth:`HashFunction.hash_array`.
* ``"blake2b"``: the original keyed BLAKE2b digest, kept behind the
  ``method`` flag as a cryptographic-strength cross-check.  Its
  vectorized path hashes each *distinct* value once and scatters the
  results, so it remains usable (if slower) from the columnar backend.

Distinct ``(seed, salt)`` pairs give (for all statistical purposes)
independent functions, matching the paper's assumption of independent
perfectly random hash functions ``h_i``.  Scalar calls may memoize
results in a bounded per-function cache (``cache_size``; the vectorized
path never populates it).

:class:`GridPartitioner` composes one hash function per dimension into
the HyperCube destination map: a tuple ``(a_1, ..., a_r)`` lands in bin
``(h_1(a_1), ..., h_r(a_r))`` of the share grid ``[p_1] x ... x [p_r]``
(Lemma 3.2 / Eq. 9).

Heterogeneous clusters (per-server speeds, :class:`repro.config.MachineSpec`)
use *weighted* buckets: instead of ``mix(value) % buckets``, the raw
64-bit mix is mapped through non-uniform cumulative thresholds, so a
bucket with twice the weight owns twice the hash range and receives (in
expectation) twice the keys.  ``weights=None`` -- and any all-equal
weight vector -- keeps the exact historical modulo mapping, so the
uniform cluster is bit-identical to the unweighted code path.
"""

from __future__ import annotations

import hashlib
import struct
from bisect import bisect_right
from typing import Literal, Sequence

import numpy as np

_TWO64 = 1 << 64

HashMethod = Literal["splitmix64", "blake2b"]

DEFAULT_CACHE_SIZE = 65_536

_MASK64 = 0xFFFFFFFFFFFFFFFF
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def _mix64(x: int) -> int:
    """The splitmix64 finalizer on a Python int (mod 2**64)."""
    x = (x + _GOLDEN) & _MASK64
    x = ((x ^ (x >> 30)) * _MIX1) & _MASK64
    x = ((x ^ (x >> 27)) * _MIX2) & _MASK64
    return x ^ (x >> 31)


def _mix64_array(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer over a ``uint64`` array (wraps mod 2**64)."""
    x = x + np.uint64(_GOLDEN)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(_MIX1)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(_MIX2)
    return x ^ (x >> np.uint64(31))


def derive_seed(seed: int, salt: int) -> int:
    """Mix a ``(seed, salt)`` pair into one 64-bit family seed.

    Affine schemes like ``seed * K + salt`` are hazardous: ``seed=0``
    collapses onto the bare salt, and distinct ``(seed, salt)`` pairs
    collide whenever their affine combinations coincide.  Here each
    component passes through its own splitmix64 round before being
    folded in, so distinct pairs produce independent-looking seeds
    (collisions only at the 2^-64 level of the mixer itself).
    """
    acc = _mix64((seed & _MASK64) ^ _GOLDEN)
    return _mix64(acc ^ (salt & _MASK64))


def bucket_boundaries(weights: Sequence[float]) -> tuple[int, ...]:
    """Integer cumulative thresholds splitting ``[0, 2^64)`` by weight.

    Bucket ``b`` owns the half-open range ``[t_{b-1}, t_b)`` with
    ``t_b = floor(2^64 * cum_b / W)`` -- exact integer arithmetic via
    :class:`~fractions.Fraction`-free cross-multiplication, so the
    scalar (:func:`bisect.bisect_right`) and vectorized
    (``np.searchsorted(..., side="right")``) lookups agree bit-for-bit.
    Returns the ``len(weights) - 1`` interior boundaries.
    """
    if any(not (w > 0.0) for w in weights):
        raise ValueError("bucket weights must be positive")
    # Scale to integers once so cumulative sums are exact.
    scaled = [int(round(w * (1 << 32))) for w in weights]
    if any(s <= 0 for s in scaled):
        raise ValueError("bucket weights too small to resolve")
    total = sum(scaled)
    boundaries = []
    cum = 0
    for s in scaled[:-1]:
        cum += s
        boundaries.append((_TWO64 * cum) // total)
    return tuple(boundaries)


class HashFunction:
    """A deterministic pseudo-random function ``int -> [0, buckets)``.

    ``weights`` (optional, one positive weight per bucket) makes the
    buckets non-uniform: the raw 64-bit mix is mapped through
    :func:`bucket_boundaries` instead of ``% buckets``, so bucket ``b``
    receives a ``weights[b] / sum(weights)`` fraction of keys in
    expectation.  ``None`` -- or an all-equal vector, which is
    normalized away -- keeps the historical modulo mapping exactly.
    """

    __slots__ = ("seed", "salt", "buckets", "method", "cache_size", "weights",
                 "_key", "_mixkey", "_cache", "_boundaries",
                 "_boundaries_array")

    def __init__(
        self,
        seed: int,
        salt: int,
        buckets: int,
        method: HashMethod = "splitmix64",
        cache_size: int = DEFAULT_CACHE_SIZE,
        weights: Sequence[float] | None = None,
    ):
        if buckets < 1:
            raise ValueError("need at least one bucket")
        if method not in ("splitmix64", "blake2b"):
            raise ValueError(f"unknown hash method {method!r}")
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if weights is not None:
            weights = tuple(float(w) for w in weights)
            if len(weights) != buckets:
                raise ValueError(
                    f"{len(weights)} weights for {buckets} buckets"
                )
            if min(weights) == max(weights):
                weights = None  # uniform: keep the exact modulo path
        self.seed = seed
        self.salt = salt
        self.buckets = buckets
        self.method = method
        self.cache_size = cache_size
        self.weights = weights
        self._key = struct.pack(">qq", seed & 0x7FFFFFFFFFFFFFFF, salt)
        # Two mixing rounds decorrelate (seed, salt) pairs before the
        # per-value round, so nearby seeds give independent functions.
        self._mixkey = _mix64(_mix64(seed & _MASK64) ^ ((salt * _GOLDEN) & _MASK64))
        self._cache: dict[int, int] = {}
        if weights is None:
            self._boundaries = None
            self._boundaries_array = None
        else:
            self._boundaries = bucket_boundaries(weights)
            self._boundaries_array = np.asarray(
                self._boundaries, dtype=np.uint64
            )

    def _bucket_of_u64(self, mixed: int) -> int:
        """Map a raw 64-bit hash to its (possibly weighted) bucket."""
        if self._boundaries is None:
            return mixed % self.buckets
        return bisect_right(self._boundaries, mixed)

    # ------------------------------------------------------------ scalar path

    def __call__(self, value: int) -> int:
        if self.method == "splitmix64":
            # Pure arithmetic; a dict probe costs as much as the mix,
            # so the scalar splitmix path does not use the cache.
            mixed = _mix64((value & _MASK64) ^ self._mixkey)
            if self._boundaries is None:
                return mixed % self.buckets
            return bisect_right(self._boundaries, mixed)
        cached = self._cache.get(value)
        if cached is not None:
            return cached
        out = self._blake2b_raw(value)
        if len(self._cache) < self.cache_size:
            self._cache[value] = out
        return out

    def _blake2b_u64(self, value: int) -> int:
        """The raw keyed BLAKE2b 64-bit digest of a value."""
        length = max(1, (value.bit_length() + 8) // 8)
        digest = hashlib.blake2b(
            value.to_bytes(length, "big", signed=True),
            key=self._key,
            digest_size=8,
        ).digest()
        return int.from_bytes(digest, "big")

    def _blake2b_raw(self, value: int) -> int:
        """One keyed BLAKE2b evaluation, bypassing the cache."""
        return self._bucket_of_u64(self._blake2b_u64(value))

    # -------------------------------------------------------- vectorized path

    def hash_array(self, values: np.ndarray) -> np.ndarray:
        """Hash a whole column at once; never populates the scalar cache.

        Agrees elementwise with :meth:`__call__` for both methods (the
        property tests cross-check this), including the weighted-bucket
        mapping (``searchsorted(..., side="right")`` matches the scalar
        ``bisect_right`` exactly).  Accepts any integer dtype; returns
        ``int64`` bucket indices.
        """
        values = np.ascontiguousarray(values)
        if values.dtype.kind not in "iu":
            raise TypeError(f"hash_array needs an integer array, got {values.dtype}")
        if self.method == "splitmix64":
            # int64 -> uint64 wraps two's-complement, matching `& _MASK64`.
            x = values.astype(np.uint64) ^ np.uint64(self._mixkey)
            mixed = _mix64_array(x)
            if self._boundaries_array is None:
                return (mixed % np.uint64(self.buckets)).astype(np.int64)
            return np.searchsorted(
                self._boundaries_array, mixed, side="right"
            ).astype(np.int64)
        # blake2b: hash each distinct value once, scatter via the inverse.
        uniq, inverse = np.unique(values, return_inverse=True)
        table = np.fromiter(
            (self._blake2b_raw(int(v)) for v in uniq),
            dtype=np.int64,
            count=len(uniq),
        )
        return table[inverse.reshape(values.shape)]

    def __repr__(self) -> str:
        weighted = "" if self.weights is None else ", weighted"
        return (
            f"HashFunction(seed={self.seed}, salt={self.salt}, "
            f"buckets={self.buckets}, method={self.method!r}{weighted})"
        )


class HashFamily:
    """A seeded factory of independent hash functions.

    ``family.function(salt, buckets)`` returns the same function for the
    same arguments, and statistically independent functions for
    different salts -- the shared-randomness model of Section 2.1
    ("random bits are available to all servers").  ``method`` selects the
    implementation for every function produced by this family;
    ``cache_size`` bounds the per-function scalar memoization cache.
    """

    def __init__(
        self,
        seed: int = 0,
        method: HashMethod = "splitmix64",
        cache_size: int = DEFAULT_CACHE_SIZE,
    ):
        self.seed = seed
        self.method = method
        self.cache_size = cache_size

    def function(
        self,
        salt: int,
        buckets: int,
        weights: Sequence[float] | None = None,
    ) -> HashFunction:
        return HashFunction(
            self.seed, salt, buckets, method=self.method,
            cache_size=self.cache_size, weights=weights,
        )

    def functions(
        self,
        count: int,
        buckets: Sequence[int],
        weights: Sequence[Sequence[float] | None] | None = None,
    ) -> list[HashFunction]:
        """``count`` independent functions with per-index bucket counts.

        ``weights`` optionally supplies per-function bucket weights
        (``None`` entries keep that function uniform).
        """
        if len(buckets) != count:
            raise ValueError("need one bucket count per function")
        if weights is None:
            weights = [None] * count
        if len(weights) != count:
            raise ValueError("need one weight vector (or None) per function")
        return [
            self.function(i, b, w)
            for i, (b, w) in enumerate(zip(buckets, weights))
        ]


class GridPartitioner:
    """HyperCube partitioning of tuples onto a share grid.

    Dimension ``i`` has ``shares[i]`` buckets and its own independent
    hash function.  ``bin_of`` maps a full tuple to its grid cell;
    ``destinations`` maps a *partial* tuple (some dimensions unknown) to
    all cells it must reach -- Eq. (9)'s destination subcube ``D(t)``.
    """

    def __init__(
        self,
        shares: Sequence[int],
        family: HashFamily | None = None,
        weights: Sequence[Sequence[float] | None] | None = None,
    ):
        if any(s < 1 for s in shares):
            raise ValueError("shares must be >= 1")
        self.shares = tuple(int(s) for s in shares)
        if weights is not None:
            if len(weights) != len(self.shares):
                raise ValueError("need one weight vector (or None) per dimension")
            # All-equal vectors are uniform; canonicalize them to None so
            # ``grid.weights is None`` iff routing is unweighted (the
            # HashFunction applies the same normalization internally).
            normalized = []
            for w in weights:
                if w is not None:
                    w = tuple(float(x) for x in w)
                    if min(w) == max(w):
                        w = None
                normalized.append(w)
            weights = tuple(normalized)
            if all(w is None for w in weights):
                weights = None
        self.weights = weights
        family = family or HashFamily(0)
        self.functions = family.functions(
            len(self.shares), self.shares, weights
        )

    @property
    def num_bins(self) -> int:
        out = 1
        for s in self.shares:
            out *= s
        return out

    @property
    def strides(self) -> tuple[int, ...]:
        """Row-major strides: ``linear_index(cell) = sum_i cell[i] * strides[i]``."""
        out = [1] * len(self.shares)
        for i in range(len(self.shares) - 2, -1, -1):
            out[i] = out[i + 1] * self.shares[i + 1]
        return tuple(out)

    def bin_of(self, values: Sequence[int]) -> tuple[int, ...]:
        if len(values) != len(self.shares):
            raise ValueError("tuple arity does not match grid dimension")
        return tuple(h(v) for h, v in zip(self.functions, values))

    def destinations(
        self, values: Sequence[int | None]
    ) -> list[tuple[int, ...]]:
        """All grid cells consistent with the known coordinates.

        ``None`` marks an unconstrained dimension; the result enumerates
        the destination subcube, of size ``prod of shares over unknown
        dimensions`` (the replication factor of the tuple).
        """
        # (weighted grids replicate over the same subcube: weights skew
        # where *hashed* coordinates land, not which cells exist)
        if len(values) != len(self.shares):
            raise ValueError("tuple arity does not match grid dimension")
        cells: list[tuple[int, ...]] = [()]
        for dim, value in enumerate(values):
            if value is None:
                cells = [c + (b,) for c in cells for b in range(self.shares[dim])]
            else:
                h = self.functions[dim](value)
                cells = [c + (h,) for c in cells]
        return cells

    def linear_index(self, cell: Sequence[int]) -> int:
        """Row-major linearization of a grid cell to a server id."""
        out = 0
        for share, coordinate in zip(self.shares, cell):
            if not 0 <= coordinate < share:
                raise ValueError(f"cell {tuple(cell)} outside grid {self.shares}")
            out = out * share + coordinate
        return out


def grid_dimension_weights(
    shares: Sequence[int], machines: object | None
) -> tuple[tuple[float, ...] | None, ...] | None:
    """Per-dimension routing weights marginalizing a machine spec.

    For a row-major share grid, dimension ``i``'s bucket ``b`` covers
    the servers whose ``i``-th grid coordinate is ``b``; its weight is
    the total speed of those servers (``machines`` is a
    :class:`repro.config.MachineSpec`, duck-typed via ``speed()`` to
    keep this module a leaf).  Dimensions whose marginal comes out
    uniform (and the whole result, when every dimension does) collapse
    to ``None`` so uniform clusters keep the exact unweighted path.

    Exact load balancing for effectively one-dimensional grids (a star
    query's center axis); for genuine product grids it is the natural
    rank-1 approximation -- each dimension is balanced against the
    speed mass of its slices.
    """
    if machines is None:
        return None
    shares = tuple(int(s) for s in shares)
    num_bins = 1
    for s in shares:
        num_bins *= s
    strides = [1] * len(shares)
    for i in range(len(shares) - 2, -1, -1):
        strides[i] = strides[i + 1] * shares[i + 1]
    weights: list[tuple[float, ...] | None] = []
    for i, share in enumerate(shares):
        if share == 1:
            weights.append(None)
            continue
        marginal = [0.0] * share
        for server in range(num_bins):
            marginal[(server // strides[i]) % share] += machines.speed(server)
        if min(marginal) == max(marginal):
            weights.append(None)
        else:
            total = sum(marginal)
            weights.append(tuple(w / total for w in marginal))
    if all(w is None for w in weights):
        return None
    return tuple(weights)
