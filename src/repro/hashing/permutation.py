"""Keyed pseudorandom permutations of ``[0, n)`` in O(1) memory.

The streaming matching generator needs a random *injection*
``[m] -> [n]`` it can evaluate chunk-by-chunk without ever holding a
length-``n`` permutation array (``rng.permutation(n)`` is the very
allocation out-of-core generation must avoid).  A keyed balanced
Feistel network over ``2 * ceil(bits(n-1) / 2)`` bits, cycle-walked
down to ``[0, n)``, is the standard construction: each of the four
rounds mixes the right half through the splitmix64 finalizer under its
own 64-bit key, giving a bijection on a power-of-two domain at most 4x
larger than ``n``; repeatedly re-applying the network to values that
land outside ``[0, n)`` ("cycle walking") restricts it to a bijection
on ``[0, n)`` because the orbit of any point under a bijection must
re-enter the subdomain.  Expected walks per value are < 4 and the whole
pipeline vectorizes over uint64 columns.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.family import _mix64_array

_ROUNDS = 4


class PseudorandomPermutation:
    """A keyed bijection on ``[0, n)``, evaluable on whole columns.

    ``keys`` are the per-round Feistel keys (length :data:`_ROUNDS`);
    draw them from a seeded ``numpy.random.Generator`` for a
    deterministic family, e.g. ``rng.integers(0, 2**63, size=4)``.
    """

    __slots__ = ("n", "keys", "_half", "_mask")

    def __init__(self, n: int, keys):
        if n < 1:
            raise ValueError("domain size must be >= 1")
        keys = [int(k) & 0xFFFFFFFFFFFFFFFF for k in keys]
        if len(keys) != _ROUNDS:
            raise ValueError(f"need exactly {_ROUNDS} round keys")
        self.n = int(n)
        self.keys = tuple(keys)
        bits = max(1, (self.n - 1).bit_length())
        self._half = (bits + 1) // 2
        self._mask = (1 << self._half) - 1

    @classmethod
    def from_rng(cls, n: int, rng: np.random.Generator) -> "PseudorandomPermutation":
        """Draw the round keys from a seeded generator stream."""
        keys = rng.integers(0, 2**63, size=_ROUNDS, dtype=np.uint64)
        return cls(n, keys.tolist())

    def _network(self, x: np.ndarray) -> np.ndarray:
        """One pass of the Feistel network over a uint64 array."""
        half = np.uint64(self._half)
        mask = np.uint64(self._mask)
        left = x >> half
        right = x & mask
        for key in self.keys:
            f = _mix64_array(right ^ np.uint64(key)) & mask
            left, right = right, left ^ f
        return (left << half) | right

    def apply_array(self, values: np.ndarray) -> np.ndarray:
        """Map a column of values in ``[0, n)`` through the permutation."""
        values = np.asarray(values)
        if values.dtype.kind not in "iu":
            raise TypeError(
                f"need an integer array, got dtype {values.dtype}"
            )
        if len(values) and (
            int(values.min()) < 0 or int(values.max()) >= self.n
        ):
            raise ValueError(f"values outside the domain [0, {self.n})")
        out = self._network(values.astype(np.uint64))
        walking = out >= np.uint64(self.n)
        while walking.any():
            out[walking] = self._network(out[walking])
            walking[walking] = out[walking] >= np.uint64(self.n)
        return out.astype(np.int64)

    def __call__(self, value: int) -> int:
        """Scalar form (cross-checks the vectorized path in tests)."""
        return int(self.apply_array(np.array([value], dtype=np.int64))[0])

    def __repr__(self) -> str:
        return f"PseudorandomPermutation(n={self.n})"
