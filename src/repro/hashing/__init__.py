"""Hashing substrate: PRF hash families and balls-in-bins analysis.

The paper's algorithms assume "independent and perfectly random hash
functions" (Lemma 3.2) drawn from a strongly universal family
(Appendix A).  We simulate such functions with a keyed BLAKE2b PRF: for
a fixed seed the function is deterministic (experiments replay exactly)
while behaving statistically like a uniform random function.

:mod:`repro.hashing.balls` implements the weighted balls-in-bins tail
bounds of Appendix A (Theorems A.1 and A.2) and simulators that check
them empirically, including the HyperCube grid partition of Theorems
A.5/A.6.
"""

from repro.hashing.family import (
    GridPartitioner,
    HashFamily,
    HashFunction,
    derive_seed,
)
from repro.hashing.balls import (
    bennett_h,
    kl_bernoulli,
    max_load_exceed_probability,
    simulate_grid_partition,
    simulate_weighted_balls,
    weighted_balls_tail_bound,
    weighted_balls_tail_bound_kl,
)

__all__ = [
    "HashFamily",
    "HashFunction",
    "GridPartitioner",
    "derive_seed",
    "bennett_h",
    "kl_bernoulli",
    "max_load_exceed_probability",
    "simulate_grid_partition",
    "simulate_weighted_balls",
    "weighted_balls_tail_bound",
    "weighted_balls_tail_bound_kl",
]
