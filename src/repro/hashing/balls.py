"""Weighted balls-in-bins: Appendix A's tail bounds and simulators.

Theorem A.1 (weighted balls in bins): hashing items of total weight
``m`` with ``max weight <= beta * m / K`` into ``K`` bins,

.. math::
    P(\\max \\text{bin} \\ge (1+\\delta) m/K) \\le K e^{-h(\\delta)/\\beta},
    \\qquad h(x) = (1+x)\\ln(1+x) - x.

Theorem A.2 strengthens ``h(delta)`` to ``K * D((1+delta)/K || 1/K)``
(KL divergence of Bernoullis).  Theorems A.5/A.6 extend the analysis to
the HyperCube grid partition, without and with the degree "promise".

The simulators here draw fresh hash functions per trial and report the
empirical exceedance probability, which the benches compare against the
closed-form bounds.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from repro.hashing.family import GridPartitioner, HashFamily, derive_seed


def bennett_h(x: float) -> float:
    """``h(x) = (1+x) ln(1+x) - x`` (Bennett's function, Thm A.1)."""
    if x < 0:
        raise ValueError("h is used for x >= 0")
    return (1.0 + x) * math.log1p(x) - x


def kl_bernoulli(q_new: float, q_old: float) -> float:
    """``D(q' || q)`` for Bernoulli distributions (Appendix A)."""
    if not (0 <= q_new <= 1 and 0 < q_old < 1):
        raise ValueError("probabilities out of range")
    out = 0.0
    if q_new > 0:
        out += q_new * math.log(q_new / q_old)
    if q_new < 1:
        out += (1 - q_new) * math.log((1 - q_new) / (1 - q_old))
    return out


def weighted_balls_tail_bound(k: int, beta: float, delta: float) -> float:
    """Theorem A.1's bound ``K e^{-h(delta)/beta}`` (may exceed 1)."""
    if k < 1 or beta <= 0 or delta < 0:
        raise ValueError("need K >= 1, beta > 0, delta >= 0")
    return k * math.exp(-bennett_h(delta) / beta)


def weighted_balls_tail_bound_kl(k: int, beta: float, delta: float) -> float:
    """Theorem A.2's sharper bound ``K e^{-K D((1+delta)/K || 1/K)/beta}``.

    Requires ``(1+delta)/K <= 1``; beyond that the probability is 0.
    """
    if k < 2 or beta <= 0 or delta < 0:
        raise ValueError("need K >= 2, beta > 0, delta >= 0")
    t = (1.0 + delta) / k
    if t >= 1.0:
        return 0.0
    return k * math.exp(-k * kl_bernoulli(t, 1.0 / k) / beta)


@dataclass(frozen=True)
class BallsInBinsResult:
    """Empirical max-load distribution over simulation trials."""

    max_loads: tuple[float, ...]
    mean_load: float
    bins: int

    def exceed_probability(self, threshold: float) -> float:
        """Fraction of trials whose max bin load reached ``threshold``."""
        if not self.max_loads:
            return 0.0
        hits = sum(1 for load in self.max_loads if load >= threshold)
        return hits / len(self.max_loads)


def simulate_weighted_balls(
    weights: Sequence[float],
    k: int,
    trials: int = 100,
    seed: int = 0,
) -> BallsInBinsResult:
    """Hash weighted balls into ``k`` bins, ``trials`` times.

    Each trial uses a fresh hash function (salted by the trial index);
    ball ``i`` is the integer key ``i``.  Returns the per-trial maximum
    bin weights.
    """
    if k < 1:
        raise ValueError("need at least one bin")
    total = float(sum(weights))
    maxima = []
    for trial in range(trials):
        h = HashFamily(seed).function(trial + 1, k)
        bins = [0.0] * k
        for i, w in enumerate(weights):
            bins[h(i)] += w
        maxima.append(max(bins) if bins else 0.0)
    mean = total / k
    return BallsInBinsResult(tuple(maxima), mean, k)


def simulate_grid_partition(
    tuples: Sequence[tuple[int, ...]],
    shares: Sequence[int],
    trials: int = 50,
    seed: int = 0,
    weights: Sequence[float] | None = None,
) -> BallsInBinsResult:
    """HyperCube-partition tuples onto a share grid, ``trials`` times.

    Implements the experiment behind Theorems A.5/A.6: tuple
    ``(a_1, ..., a_r)`` goes to bin ``(h_1(a_1), ..., h_r(a_r))``.
    Returns per-trial maximum bin loads (tuple-weighted by ``weights``
    if given, else unit weights).
    """
    if weights is None:
        weights = [1.0] * len(tuples)
    if len(weights) != len(tuples):
        raise ValueError("need one weight per tuple")
    arity = len(shares)
    for t in tuples:
        if len(t) != arity:
            raise ValueError("tuple arity must match the grid dimension")
    p = math.prod(shares)
    total = float(sum(weights))
    maxima = []
    for trial in range(trials):
        # splitmix64 mixing: affine seed*K+trial derivations collide
        # across (seed, trial) pairs and correlate adjacent trials.
        family = HashFamily(derive_seed(seed, trial + 1))
        grid = GridPartitioner(shares, family)
        bins: dict[tuple[int, ...], float] = {}
        for t, w in zip(tuples, weights):
            cell = grid.bin_of(t)
            bins[cell] = bins.get(cell, 0.0) + w
        maxima.append(max(bins.values()) if bins else 0.0)
    return BallsInBinsResult(tuple(maxima), total / p, p)


def max_load_exceed_probability(
    result: BallsInBinsResult, delta: float
) -> float:
    """``P(max load >= (1+delta) * mean)`` from a simulation result."""
    return result.exceed_probability((1.0 + delta) * result.mean_load)


def adversarial_weights(
    m: int, k: int, beta: float, seed: int | random.Random = 0
) -> list[float]:
    """A weight vector saturating the Theorem A.1 promise.

    Produces balls of the maximum allowed weight ``beta * m / K`` (plus
    one remainder ball), the worst case for hash-based load balancing.
    ``seed`` may be an int or a pre-seeded :class:`random.Random`, so a
    caller sweeping many configurations can thread one generator
    through instead of re-seeding per call.
    """
    if beta <= 0:
        raise ValueError("beta must be positive")
    cap = beta * m / k
    if cap <= 0:
        raise ValueError("cap must be positive")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    weights: list[float] = []
    remaining = float(m)
    while remaining > cap:
        weights.append(cap)
        remaining -= cap
    if remaining > 0:
        weights.append(remaining)
    rng.shuffle(weights)
    return weights
