"""Replication-rate lower bounds (Corollary 3.19, Example 3.20).

The replication rate of an algorithm is ``r = sum_s L_s / |I|``: the
average number of times each input bit is communicated.  Corollary 3.19
turns the answer-counting argument of Theorem 3.5 into

.. math::
    r \\ge \\frac{c L}{\\sum_j M_j} \\max_u \\prod_j (M_j / L)^{u_j},
    \\qquad c = \\Big(\\frac{\\sum_j u_j}{4}\\Big)^{\\sum_j u_j},

for any fractional edge packing ``u`` with ``L <= M_j`` for all ``j``.
With equal sizes ``M`` this is ``Omega((M/L)^{tau* - 1})`` -- the paper's
Example 3.20 gives ``Omega(sqrt(M/L))`` for the triangle query.
"""

from __future__ import annotations

from repro.bounds.one_round import _vertices
from repro.core.packing import fractional_vertex_cover_number
from repro.core.query import ConjunctiveQuery
from repro.core.stats import Statistics


def replication_rate_lower_bound(
    query: ConjunctiveQuery, stats: Statistics, load_bits: float
) -> float:
    """Corollary 3.19's bound, maximized over the packing vertices.

    Requires ``load_bits <= M_j`` for every relation (relations smaller
    than the load can be shipped for free -- the corollary's proviso).
    """
    if load_bits <= 0:
        raise ValueError("load must be positive")
    bits = stats.bits_vector()
    if any(load_bits > m for m in bits.values()):
        raise ValueError(
            "corollary applies only when L <= M_j for every relation"
        )
    total_bits = sum(bits.values())
    best = 0.0
    for u in _vertices(query):
        weight_sum = sum(u.values())
        if weight_sum <= 0:
            continue
        c = (weight_sum / 4.0) ** weight_sum
        product = 1.0
        for relation, weight in u.items():
            if weight > 0:
                product *= (bits[relation] / load_bits) ** weight
        best = max(best, c * load_bits / total_bits * product)
    return best


def replication_rate_equal_sizes(
    query: ConjunctiveQuery, relation_bits: float, load_bits: float
) -> float:
    """The shape ``(M/L)^{tau* - 1}`` (constants dropped).

    For the triangle query this is ``sqrt(M/L)`` (Example 3.20); the
    ideal ``r = o(1)`` is possible only when ``tau* = 1``, i.e. some
    variable occurs in every atom.
    """
    if load_bits <= 0 or relation_bits <= 0:
        raise ValueError("sizes must be positive")
    tau = fractional_vertex_cover_number(query)
    return (relation_bits / load_bits) ** (tau - 1.0)
