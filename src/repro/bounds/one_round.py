"""The one-round load lower bound (Theorem 3.5) and its tightness.

For a fractional edge packing ``u`` of ``q`` and bit statistics ``M``,

.. math::
    L(u, M, p) = \\Big( \\frac{\\prod_j M_j^{u_j}}{p} \\Big)^{1/\\sum_j u_j}

is a load lower bound (up to the constant ``(sum_j u_j)/4``), and

.. math::  L_{lower} = \\max_u L(u, M, p)

over the packing polytope.  Section 3.3 proves the maximum is attained
at a vertex of ``pk(q)`` and Theorem 3.15 shows ``L_lower`` equals the
HyperCube upper bound ``L_upper = p^{e^*}`` of LP (10): the two halves
of the paper's "essentially tight" claim.  Theorem 3.5 also bounds the
*fraction of answers* any load-``L`` algorithm can report, which is
what :func:`answer_fraction_bound` computes.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Mapping

from repro.core.packing import packing_polytope_vertices
from repro.core.query import ConjunctiveQuery
from repro.core.shares import share_exponents
from repro.core.stats import Statistics


def load_formula(
    u: Mapping[str, float], bits: Mapping[str, float], p: int
) -> float:
    """``L(u, M, p)`` of Eq. (11); 0 for the all-zero packing."""
    total = sum(u.values())
    if total <= 0:
        return 0.0
    log_product = 0.0
    for relation, weight in u.items():
        if weight <= 0:
            continue
        m = bits[relation]
        if m <= 0:
            return 0.0
        log_product += weight * math.log(m)
    exponent = (log_product - math.log(p)) / total
    return math.exp(exponent)


@lru_cache(maxsize=256)
def _vertices(query: ConjunctiveQuery) -> tuple[dict[str, float], ...]:
    return packing_polytope_vertices(query)


def optimal_packing_vertex(
    query: ConjunctiveQuery, stats: Statistics, p: int
) -> tuple[dict[str, float], float]:
    """The vertex ``u*`` of ``pk(q)`` maximizing ``L(u, M, p)``.

    Returns ``(u*, L(u*, M, p))``.  Section 3.3: the optimum over all
    packings is attained at a polytope vertex.
    """
    bits = stats.bits_vector()
    best_u: dict[str, float] | None = None
    best_value = -1.0
    for u in _vertices(query):
        value = load_formula(u, bits, p)
        if value > best_value:
            best_u, best_value = u, value
    if best_u is None:
        raise ValueError("query has no packing vertices")
    return best_u, best_value


def lower_bound(query: ConjunctiveQuery, stats: Statistics, p: int) -> float:
    """``L_lower = max_u L(u, M, p)`` in bits."""
    return optimal_packing_vertex(query, stats, p)[1]


def upper_bound(query: ConjunctiveQuery, stats: Statistics, p: int) -> float:
    """``L_upper = p^{e*}`` from LP (10) (Theorem 3.4), in bits."""
    return share_exponents(query, stats, p).load_bits


def equivalence_gap(query: ConjunctiveQuery, stats: Statistics, p: int) -> float:
    """``L_upper / L_lower``; Theorem 3.15 proves this equals 1."""
    lo = lower_bound(query, stats, p)
    hi = upper_bound(query, stats, p)
    if lo <= 0:
        raise ValueError("degenerate statistics: lower bound is zero")
    return hi / lo


def speedup_exponent_at(
    query: ConjunctiveQuery, stats: Statistics, p: int
) -> float:
    """``1 / sum_j u*_j`` for the optimal vertex (Section 3.4).

    The load decreases like ``p^{-1/sum u*}`` as ``p`` grows; with
    equal cardinalities this is ``1/tau*``, with unequal ones it can be
    better (Lemma 3.18).
    """
    u, _ = optimal_packing_vertex(query, stats, p)
    total = sum(u.values())
    if total <= 0:
        raise ValueError("optimal packing is the zero vertex")
    return 1.0 / total


def answer_fraction_bound(
    query: ConjunctiveQuery,
    stats: Statistics,
    p: int,
    load_bits: float,
    strengthened: bool = False,
) -> float:
    """Theorem 3.5: max fraction of ``E[|q(I)|]`` reported at load ``L``.

    For each packing ``u`` the theorem bounds the reported answers by
    ``(4L / (sum_j u_j * L(u, M, p)))^{sum_j u_j} * E[|q(I)|]``; the
    strongest bound minimizes over the polytope vertices.  With
    ``strengthened=True`` the constant 4 is dropped (the equal-size,
    arity >= 2 refinement in the theorem's second part).  The result is
    clipped to 1 (a fraction).
    """
    if load_bits <= 0:
        return 0.0
    bits = stats.bits_vector()
    constant = 1.0 if strengthened else 4.0
    best = 1.0
    for u in _vertices(query):
        total = sum(u.values())
        if total <= 0:
            continue
        l_u = load_formula(u, bits, p)
        if l_u <= 0:
            continue
        fraction = (constant * load_bits / (total * l_u)) ** total
        best = min(best, fraction)
    return min(1.0, best)
