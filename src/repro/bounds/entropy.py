"""Entropy of multi-dimensional matchings (Eq. 12, Proposition 3.14).

The one-round lower bound charges an algorithm for the bits needed to
*describe* a matching relation.  There are ``binom(n, m)^a (m!)^{a-1}``
matchings of arity ``a`` and size ``m`` over ``[n]``, so the entropy is

.. math::
    \\mathcal{M}_j = a_j \\log \\binom{n}{m_j} + (a_j - 1) \\log (m_j!)

Proposition 3.14 relates it to the raw size ``M_j = a_j m_j log n``:
``M_j >= M_j / 2`` when ``n >= m_j^2`` and ``>= M_j / 4`` when
``n = m_j`` and ``a_j >= 2``.  All logs here are base 2 (bits).
"""

from __future__ import annotations

import math


def log2_factorial(m: int) -> float:
    """``log2(m!)`` via ``lgamma`` (exact enough for all experiment sizes)."""
    if m < 0:
        raise ValueError("m must be >= 0")
    return math.lgamma(m + 1) / math.log(2.0)


def log2_binomial(n: int, m: int) -> float:
    """``log2 binom(n, m)``; 0 when the coefficient is 1 or undefined inputs."""
    if m < 0 or n < 0 or m > n:
        raise ValueError("need 0 <= m <= n")
    return log2_factorial(n) - log2_factorial(m) - log2_factorial(n - m)


def binary_entropy(x: float) -> float:
    """``H(x) = -x log2 x - (1-x) log2 (1-x)`` on [0, 1]."""
    if not 0.0 <= x <= 1.0:
        raise ValueError("binary entropy needs x in [0, 1]")
    out = 0.0
    if 0.0 < x < 1.0:
        out = -x * math.log2(x) - (1 - x) * math.log2(1 - x)
    return out


def matching_entropy_bits(n: int, m: int, arity: int) -> float:
    """Eq. (12): the entropy of a uniform ``arity``-dim matching, in bits."""
    if arity < 1:
        raise ValueError("arity must be >= 1")
    if m > n:
        raise ValueError("matchings need m <= n")
    return arity * log2_binomial(n, m) + (arity - 1) * log2_factorial(m)


def raw_size_bits(n: int, m: int, arity: int) -> float:
    """``M_j = a_j m_j log2 n`` -- the relation's raw encoding size."""
    if n < 2:
        return float(arity * m)  # degenerate domain: 1 bit per value
    return arity * m * math.log2(n)
