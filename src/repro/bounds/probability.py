"""Appendix B probability bounds (Lemmas B.1, B.2; Theorem 3.7).

These convert "the algorithm reports few answers in expectation" into
"the algorithm *fails* with constant probability", via a Paley-Zygmund
anti-concentration bound for the output count of a connected query over
random matchings.
"""

from __future__ import annotations

import math

from repro.core.packing import fractional_vertex_cover_number
from repro.core.query import ConjunctiveQuery


def output_concentration_bound(mu: float, alpha: float) -> float:
    """Lemma B.1: ``P(|q(I)| > alpha*mu) >= (1-alpha)^2 mu/(mu+1)``."""
    if mu < 0:
        raise ValueError("mu must be >= 0")
    if not 0.0 <= alpha < 1.0:
        raise ValueError("alpha must be in [0, 1)")
    return (1.0 - alpha) ** 2 * mu / (mu + 1.0)


def failure_probability_bound(f: float) -> float:
    """Lemma B.2 / Lemma 3.8: ``P(fail | C_{1/3}) >= 1 - 9f``.

    ``f`` is the fraction of the expected output the algorithm reports;
    the bound is vacuous (0) once ``f >= 1/9``.
    """
    if f < 0:
        raise ValueError("f must be >= 0")
    return max(0.0, 1.0 - 9.0 * f)


def randomized_failure_bound(query: ConjunctiveQuery, delta: float) -> float:
    """Theorem 3.7: failure probability ``1 - 9 (4 delta)^{1/tau*}``.

    Any one-round randomized algorithm with load ``<= delta * L_lower``
    fails on some instance with at least this probability; positive for
    ``delta < 1/(4 * 9^{tau*})``.
    """
    if delta <= 0:
        raise ValueError("delta must be positive")
    tau = fractional_vertex_cover_number(query)
    return max(0.0, 1.0 - 9.0 * (4.0 * delta) ** (1.0 / tau))


def delta_threshold(query: ConjunctiveQuery) -> float:
    """The ``delta`` below which Theorem 3.7 yields a positive bound."""
    tau = fractional_vertex_cover_number(query)
    return 1.0 / (4.0 * 9.0**tau)


def expected_answers_cap(
    f_per_packing: float, expected_output: float
) -> float:
    """Convenience: ``f * E[|q(I)|]``, the Theorem 3.5 answer cap."""
    if f_per_packing < 0 or expected_output < 0:
        raise ValueError("arguments must be >= 0")
    return f_per_packing * expected_output


def required_trials(target_probability: float, per_trial: float) -> int:
    """Trials needed so a per-trial event of prob ``p`` occurs w.p. >= target.

    Used by experiments that amplify constant-probability failure
    events: ``1 - (1-p)^t >= target``.
    """
    if not 0 < per_trial <= 1 or not 0 < target_probability < 1:
        raise ValueError("probabilities must be in (0, 1]")
    if per_trial == 1.0:
        return 1
    return math.ceil(
        math.log(1 - target_probability) / math.log(1 - per_trial)
    )
