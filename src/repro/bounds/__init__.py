"""Lower-bound calculators (paper Sections 3.2-3.4, Appendix B).

Lower bounds cannot be "run"; they are formulas.  This subpackage
implements each of them exactly:

* the one-round load lower bound ``L(u, M, p)`` (Eq. 11) maximized over
  the packing polytope (Theorem 3.5), and its equality with the
  HyperCube upper bound (Theorem 3.15);
* the answer-fraction bound of Theorem 3.5 (how few answers a
  load-``L`` algorithm can report);
* the replication-rate lower bound (Corollary 3.19);
* entropy of multi-dimensional matchings (Eq. 12, Proposition 3.14);
* the probability lemmas of Appendix B (Paley-Zygmund style bounds used
  by Theorem 3.7's randomized-algorithm argument).
"""

from repro.bounds.one_round import (
    answer_fraction_bound,
    equivalence_gap,
    load_formula,
    lower_bound,
    optimal_packing_vertex,
    speedup_exponent_at,
    upper_bound,
)
from repro.bounds.replication import (
    replication_rate_equal_sizes,
    replication_rate_lower_bound,
)
from repro.bounds.entropy import (
    binary_entropy,
    log2_binomial,
    log2_factorial,
    matching_entropy_bits,
)
from repro.bounds.probability import (
    failure_probability_bound,
    output_concentration_bound,
    randomized_failure_bound,
)

__all__ = [
    "answer_fraction_bound",
    "equivalence_gap",
    "load_formula",
    "lower_bound",
    "optimal_packing_vertex",
    "speedup_exponent_at",
    "upper_bound",
    "replication_rate_equal_sizes",
    "replication_rate_lower_bound",
    "binary_entropy",
    "log2_binomial",
    "log2_factorial",
    "matching_entropy_bits",
    "failure_probability_bound",
    "output_concentration_bound",
    "randomized_failure_bound",
]
