"""One front door: a configured cluster, many queries.

The MPC model fixes a cluster once -- ``p`` servers, a per-server
capacity ``L`` -- and then asks how *any* query runs on it.  This
module gives the Python API the same shape:

* :class:`ClusterConfig` is the frozen description of that cluster
  (servers, execution backend, seed, capacity cap, routing PRF, memory
  budget, chunk granularity);
* :class:`Session` owns the derived storage lifecycle and exposes one
  verb, :meth:`Session.run` -- planner-routed by default, pinnable to
  any named strategy -- plus :meth:`Session.plan` (EXPLAIN),
  :meth:`Session.run_many` (concurrent batch execution over shared
  storage) and :attr:`Session.history` (per-run load records for
  workload-level reporting);
* :class:`RunResult` is the structural protocol every executor result
  satisfies (``HyperCubeResult``, ``StarSkewResult``,
  ``TriangleSkewResult``, ``MultiRoundResult``, ``PlannedExecution``),
  so callers stop special-casing result types;
* :func:`dispatch_run` is the shared internal run path.  The legacy
  free functions (``run_hypercube``, ``run_star_skew``,
  ``run_triangle_skew``, ``run_plan``) are thin wrappers over it, and
  the planner's strategies call those wrappers, so *every* execution
  in the system funnels through one resolution of the
  backend/storage/capacity knobs
  (:meth:`repro.config.ExecutionSettings.resolve`).

Quickstart::

    from repro import Job, Session, star_query, triangle_query
    from repro import matching_database, zipf_database

    q = triangle_query()
    db = matching_database(q, m=100_000, n=400_000, seed=0)
    with Session(p=64, seed=0) as session:
        result = session.run(q, db)                 # planner-routed
        pinned = session.run(q, db, strategy="skew-triangle")
        print(session.plan(q, db).table())          # EXPLAIN

        zq = star_query(2)
        zdb = zipf_database(zq, m=50_000, n=50_000, skew=1.0, seed=1)
        results = session.run_many(
            [Job(q, db), Job(zq, zdb)], max_workers=2
        )
        print(session.workload_summary())           # history percentiles

Batch jobs draw per-job seeds via :func:`repro.hashing.derive_seed`
(job ``i`` runs with ``derive_seed(config.seed, i)``), so a workload is
reproducible and independent of ``max_workers``.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
import re
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import (
    Iterable,
    Literal,
    Mapping,
    Protocol,
    Sequence,
    runtime_checkable,
)

import numpy as np

from repro.config import (
    Backend,
    ExecutionSettings,
    MachineSpec,
    PoolKind,
    resolve_machines,
    resolve_pool,
)
from repro.core.query import ConjunctiveQuery
from repro.data.database import Database
from repro.hashing.family import derive_seed
from repro.hypercube.algorithm import _hypercube_impl
from repro.metrics.registry import (
    MetricsRegistry,
    active_metrics,
    collecting,
    global_metrics,
)
from repro.mpc.report import LoadReport
from repro.mpc.timing import format_phases
from repro.parallel.pool import get_pool
from repro.parallel.tasks import RunJobTask, run_job_task
from repro.multiround.executor import _multiround_impl
from repro.multiround.plans import Plan
from repro.planner.engine import (
    IN_MEMORY_FOOTPRINT_FACTOR,
    PlannedExecution,
    execute as _planner_execute,
)
from repro.planner.optimizer import ExplainedPlan, plan as _planner_plan
from repro.planner.statistics import DataStatistics
from repro.skew.heavy_hitters import HitterStatistics
from repro.skew.star import _star_impl
from repro.skew.triangle import _triangle_impl
from repro.storage.manager import StorageManager
from repro.trace.recorder import TraceRecorder, tracing

_TRACE_SAFE_NAME = re.compile(r"[^A-Za-z0-9_.-]+")


def _repro_version() -> str:
    # Lazy: repro/__init__ imports this module.
    from repro import __version__

    return __version__


@runtime_checkable
class RunResult(Protocol):
    """What every execution result answers, regardless of executor.

    ``HyperCubeResult``, ``StarSkewResult``, ``TriangleSkewResult``,
    ``MultiRoundResult`` and ``PlannedExecution`` all satisfy this
    protocol structurally -- no inheritance involved -- so code that
    consumes "the outcome of running a query" needs exactly these six
    members and never an ``isinstance`` ladder.
    """

    @property
    def answers(self) -> set[tuple[int, ...]]:
        """The distinct answers as Python tuples (may materialize lazily)."""

    def answers_array(self) -> np.ndarray:
        """The distinct answers as a canonical ``(n, k)`` int64 array."""

    @property
    def load_report(self) -> LoadReport:
        """Per-round, per-server load accounting for the execution."""

    @property
    def rounds(self) -> int:
        """Communication rounds executed."""

    @property
    def strategy(self) -> str:
        """The strategy name that produced this result."""

    @property
    def predicted_bits(self) -> float | None:
        """The cost model's load prediction (None when never estimated)."""


@dataclass(frozen=True)
class ClusterConfig:
    """The fixed machine configuration of the MPC model, as one value.

    Everything that describes the *cluster* -- as opposed to a single
    query -- lives here: the number of servers ``p``, the execution
    backend, the base seed every run derives from, the per-server
    per-round capacity ``L`` and its overflow policy, the routing PRF,
    and the memory story (budget and chunk granularity).  A
    :class:`Session` applies one config uniformly to every run.
    """

    p: int
    backend: Backend | None = None
    seed: int = 0
    capacity_bits: float | None = None
    on_overflow: Literal["fail", "drop"] = "fail"
    hash_method: str = "splitmix64"
    memory_budget_bytes: int | None = None
    chunk_rows: int | None = None
    #: Worker pool for intra-run parallelism (per-server routing and
    #: joins) and for :meth:`Session.run_many` batches.  ``None``
    #: follows :func:`repro.config.default_pool` (the
    #: ``REPRO_DEFAULT_POOL`` environment variable, else serial).
    pool: PoolKind | None = None
    #: Workers per pool (``None``: one per CPU core, capped at 8).
    max_workers: int | None = None
    #: Directory for per-run communication-trace artifacts (created if
    #: missing).  ``None`` (the default) disables tracing.  When set,
    #: every run records a :mod:`repro.trace` event stream, writes it
    #: as one JSONL file under this directory, and points
    #: ``RunRecord.trace_path`` at it.  Tracing never perturbs results.
    trace: "str | pathlib.Path | None" = None
    #: Per-machine speeds and capacities (a :class:`MachineSpec`, or a
    #: pattern string like ``"4x1,4x2"``).  ``None`` follows
    #: :func:`repro.config.default_machines` (the
    #: ``REPRO_DEFAULT_MACHINES`` environment variable, else the
    #: homogeneous model).  An explicit spec must have exactly ``p``
    #: machines; a default pattern is cycled to ``p``.
    machines: "MachineSpec | str | None" = None
    #: Collect live telemetry (:mod:`repro.metrics`) for every run.
    #: The session keeps one aggregated :class:`MetricsRegistry`
    #: (:attr:`Session.metrics`) and rolls every run into the
    #: process-wide registry; per-run counter totals reconcile exactly
    #: with the run's :class:`~repro.mpc.report.LoadReport`, and
    #: results stay bit-identical to a metrics-off run.
    metrics: bool = False

    def __post_init__(self) -> None:
        if self.p < 1:
            raise ValueError("need at least one server")
        if isinstance(self.machines, str):
            object.__setattr__(
                self, "machines", MachineSpec.parse(self.machines)
            )
        if self.machines is not None and self.machines.p != self.p:
            raise ValueError(
                f"machines spec describes {self.machines.p} machine(s), "
                f"but the cluster has p={self.p}"
            )
        if (
            self.memory_budget_bytes is not None
            and self.memory_budget_bytes < 1
        ):
            raise ValueError("memory_budget_bytes must be >= 1")
        # Delegate the remaining validation (backend, overflow policy,
        # hash method, chunk_rows, pool, max_workers) to the settings
        # value object.
        self.settings()

    def settings(self) -> ExecutionSettings:
        """The per-run execution knobs this cluster prescribes."""
        return ExecutionSettings(
            backend=self.backend,
            capacity_bits=self.capacity_bits,
            on_overflow=self.on_overflow,
            hash_method=self.hash_method,
            chunk_rows=self.chunk_rows,
            pool=self.pool,
            max_workers=self.max_workers,
            machines=self.machines,
        )


#: The executor cores behind the shared run path, by strategy name.
#: Each takes ``(query, database, p, *, seed, settings, storage, ...)``
#: with an already-resolved :class:`ExecutionSettings`.
_IMPLEMENTATIONS = {
    "hypercube": _hypercube_impl,
    "skew-star": _star_impl,
    "skew-triangle": _triangle_impl,
    "multiround": _multiround_impl,
}


def dispatch_run(
    strategy: str,
    query: ConjunctiveQuery,
    database: Database,
    p: int,
    *,
    seed: int,
    settings: ExecutionSettings,
    storage: StorageManager | None = None,
    **overrides: object,
) -> RunResult:
    """The shared internal run path behind every executor entry point.

    Resolves ``settings`` against ``storage`` and ``p`` exactly once
    (:meth:`ExecutionSettings.resolve` -- the backend default, the
    storage/backend compatibility check, the chunk-size default, the
    machine-spec default and its ``p``-match validation) and
    invokes the named executor core.  ``run_hypercube`` /
    ``run_star_skew`` / ``run_triangle_skew`` / ``run_plan`` are thin
    wrappers over this function, and the planner's strategies run
    through those wrappers, so a :class:`Session`, a legacy free
    function and an EXPLAIN-then-execute all share one code path.
    """
    impl = _IMPLEMENTATIONS.get(strategy)
    if impl is None:
        raise ValueError(
            f"unknown executor strategy {strategy!r} "
            f"(expected one of {sorted(_IMPLEMENTATIONS)})"
        )
    resolved = settings.resolve(storage, p)
    before = storage.io_counters() if storage is not None else None
    metrics = active_metrics()
    # The wall clock is read only when metrics are on, and only around
    # the whole run -- never on an identity-sensitive path.
    run_started = time.perf_counter() if metrics is not None else 0.0  # repro: allow(wall-clock) -- metrics-gated, whole-run only
    result = impl(
        query, database, p,
        seed=seed, settings=resolved, storage=storage, **overrides,
    )
    if storage is not None:
        # Managers outlive runs (a session shares one across a whole
        # batch), so the run's own spill traffic is the counter delta.
        # peak_live_bytes is manager-lifetime: concurrent runs share
        # the disk, so a per-run peak would be fiction.
        after = storage.io_counters()
        result.load_report.attach_spill({
            "bytes_written": after["bytes_written"] - before["bytes_written"],
            "files_created": after["files_created"] - before["files_created"],
            "bytes_read": after["bytes_read"] - before["bytes_read"],
            "reads": after["reads"] - before["reads"],
            "peak_live_bytes": after["peak_live_bytes"],
        })
    if metrics is not None:
        elapsed = time.perf_counter() - run_started  # repro: allow(wall-clock) -- metrics-gated, whole-run only
        report = result.load_report
        name = result.strategy
        metrics.counter("repro_runs_total", strategy=name).inc()
        metrics.histogram("repro_run_seconds", strategy=name).observe(elapsed)
        metrics.histogram("repro_run_rounds", strategy=name).observe(
            report.num_rounds
        )
        metrics.histogram("repro_run_load_bits", strategy=name).observe(
            report.max_load_bits
        )
        if report.machines is not None and not report.machines.is_uniform:
            metrics.gauge("repro_run_makespan_bits", strategy=name).set(
                report.makespan_bits
            )
    return result


@dataclass(frozen=True)
class Job:
    """One unit of a :meth:`Session.run_many` workload.

    ``seed=None`` (the default) derives the job's seed from the
    session seed and the job's position via
    :func:`repro.hashing.derive_seed`, so batches are reproducible and
    independent of scheduling.  ``stats`` forwards pre-collected
    :class:`DataStatistics` (plan once, run many); ``label`` names the
    job in :attr:`Session.history`.
    """

    query: ConjunctiveQuery
    database: Database
    strategy: str | None = None
    shares: Mapping[str, int] | None = None
    exponents: Mapping[str, float] | None = None
    hitters: object | None = None
    plan: Plan | None = None
    stats: DataStatistics | None = None
    seed: int | None = None
    label: str | None = None


@dataclass(frozen=True)
class RunRecord:
    """One row of :attr:`Session.history`: the load story of one run.

    ``label`` defaults to ``run-<index>`` (the record's position in
    the history) when the caller named neither the run nor the job.
    """

    label: str | None
    query: str
    strategy: str
    p: int
    seed: int
    rounds: int
    max_load_bits: float
    total_bits: float
    dropped_bits: float
    predicted_bits: float | None
    percentiles: Mapping[str, float]
    wall_seconds: float
    #: Exclusive per-phase wall-clock seconds
    #: (``generate``/``route``/``ship``/``join``/``merge``), from the
    #: executor's :class:`~repro.mpc.timing.PhaseTimer`.  Empty for
    #: uninstrumented executors (the tuple-backend baselines).
    phase_seconds: Mapping[str, float] = field(default_factory=dict)
    #: Exclusive per-phase *bits delivered* -- ``phase_seconds``'s
    #: communication-volume twin (``LoadReport.phase_bytes``).  Sums to
    #: ``total_bits`` for instrumented executors.
    phase_bytes: Mapping[str, float] = field(default_factory=dict)
    #: The run's JSONL trace artifact, when the session traced
    #: (``ClusterConfig(trace=...)``); None otherwise.
    trace_path: str | None = None
    #: The run's machine spec (``MachineSpec.describe()`` form, e.g.
    #: ``"4x1+4x4"``) when the cluster was heterogeneous; None for the
    #: homogeneous model.
    machines: str | None = None
    #: ``max over rounds, servers of L_s / v_s`` -- the speed-normalized
    #: load (``LoadReport.makespan_bits``); recorded only for
    #: heterogeneous runs (it equals ``max_load_bits`` otherwise).
    makespan_bits: float | None = None

    def line(self) -> str:
        """A one-line rendering for workload summaries."""
        predicted = (
            f", predicted {self.predicted_bits:.0f}"
            if self.predicted_bits is not None
            else ""
        )
        dropped = (
            f", dropped {self.dropped_bits:.0f}" if self.dropped_bits else ""
        )
        phases = (
            f" [{format_phases(self.phase_seconds, self.phase_bytes)}]"
            if self.phase_seconds or self.phase_bytes
            else ""
        )
        makespan = (
            f", makespan {self.makespan_bits:.0f}"
            if self.makespan_bits is not None
            else ""
        )
        return (
            f"{self.label}: {self.strategy}, {self.rounds} round(s), "
            f"L = {self.max_load_bits:.0f} bits{predicted}{dropped}"
            f"{makespan}, "
            f"p99 {self.percentiles.get('p99', 0.0):.0f}, "
            f"{self.wall_seconds * 1e3:.1f} ms{phases}"
        )


class Session:
    """A configured cluster serving many queries: the one front door.

    Construct from a :class:`ClusterConfig` or directly from its
    knobs::

        with Session(p=64, seed=0, capacity_bits=1e6) as session:
            result = session.run(query, db)

    The session owns the storage lifecycle its configuration implies:
    with ``memory_budget_bytes`` set, a shared
    :class:`~repro.storage.manager.StorageManager` (sized by
    :meth:`StorageManager.from_budget`) opens lazily for the first
    database whose assumed in-memory footprint exceeds the budget, is
    shared by every subsequent over-budget run -- including all jobs
    of a :meth:`run_many` batch -- and closes (removing its spill
    files) with the session.  An explicit ``storage=`` manager is used
    for every run instead and stays owned by the caller.

    :meth:`run` routes through the cost-based planner by default and
    pins any registered strategy by name; either way the execution
    flows through the same shared run path as the legacy free
    functions, so a pinned ``session.run(q, db, "skew-star")`` is
    bit-identical (answers, per-server loads, capacity truncation) to
    ``run_star_skew(q, db, p, ...)`` with the same knobs.

    Every finished run appends a :class:`RunRecord` to
    :attr:`history`; :meth:`workload_summary` renders the accumulated
    records with workload-level load percentiles.
    """

    def __init__(
        self,
        config: ClusterConfig | None = None,
        *,
        storage: StorageManager | None = None,
        **knobs: object,
    ) -> None:
        if config is None:
            config = ClusterConfig(**knobs)
        elif knobs:
            raise TypeError(
                "pass either a ClusterConfig or keyword knobs, not both"
            )
        self.config = config
        self.history: list[RunRecord] = []
        #: The session's aggregated telemetry view
        #: (``ClusterConfig(metrics=True)``); None when disabled.
        self.metrics: MetricsRegistry | None = (
            MetricsRegistry() if config.metrics else None
        )
        self._external_storage = storage
        self._owned_storage: StorageManager | None = None
        self._closed = False
        self._lock = threading.Lock()
        self._trace_counter = 0

    # ------------------------------------------------------------ lifecycle

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Close the session and any storage it opened (idempotent).

        Materialize lazily-answered results *before* closing: spooled
        outputs live in the session-owned spill directory.
        """
        if self._closed:
            return
        self._closed = True
        if self._owned_storage is not None:
            self._owned_storage.close()
            self._owned_storage = None

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def storage(self) -> StorageManager | None:
        """The manager runs share (None while fully in-memory)."""
        if self._external_storage is not None:
            return self._external_storage
        return self._owned_storage

    def _storage_for(self, database: Database) -> StorageManager | None:
        """The manager one run over ``database`` should use.

        Mirrors the planner engine's budget rule: an explicit manager
        always applies; a configured budget applies only when the
        database's assumed in-memory footprint exceeds it (opening the
        shared session manager on first use).
        """
        if self._external_storage is not None:
            return self._external_storage
        budget = self.config.memory_budget_bytes
        if budget is None:
            return None
        footprint = database.total_bytes() * IN_MEMORY_FOOTPRINT_FACTOR
        if footprint <= budget:
            return None
        with self._lock:
            if self._owned_storage is None:
                self._owned_storage = StorageManager.from_budget(budget)
            return self._owned_storage

    # ----------------------------------------------------------------- runs

    def run(
        self,
        query: ConjunctiveQuery,
        database: Database,
        strategy: str | None = None,
        *,
        shares: Mapping[str, int] | None = None,
        exponents: Mapping[str, float] | None = None,
        hitters: HitterStatistics | Mapping[str, HitterStatistics] | None = None,
        plan: Plan | None = None,
        stats: DataStatistics | None = None,
        seed: int | None = None,
        label: str | None = None,
    ) -> PlannedExecution:
        """Run one query on the configured cluster.

        With ``strategy=None`` the cost-based planner ranks every
        registered strategy and runs the predicted winner; a name pins
        any applicable strategy (``"hypercube"``, ``"skew-star"``,
        ``"multiround-tuples"``, ...).  ``shares``/``exponents`` (share
        based strategies), ``hitters`` (skew-aware ones) and ``plan``
        (multi-round) override per run; strategies that cannot honor
        an override reject it.

        ``stats`` forwards pre-collected :class:`DataStatistics`.
        When the session's memory budget engages storage and no stats
        are given, exact statistics are still collected -- identical
        decisions at any scale; pass
        ``stats=DataStatistics.from_sample(...)`` to trade exactness
        for scan cost on genuinely out-of-core inputs.

        ``seed`` overrides the session seed for this run only.  The
        result satisfies :class:`RunResult` and is recorded in
        :attr:`history` (as ``label``, default ``run-<index>``).
        """
        result, record = self._execute(
            query, database, strategy,
            shares=shares, exponents=exponents, hitters=hitters, plan=plan,
            stats=stats, seed=seed, label=label,
        )
        self._append_records([record])
        return result

    def plan(
        self,
        query: ConjunctiveQuery,
        source: "Database | DataStatistics",
        strategies: Sequence | None = None,
    ) -> ExplainedPlan:
        """EXPLAIN: rank every strategy for this cluster, run nothing.

        ``source`` is a :class:`Database` (statistics are collected),
        pre-collected :class:`DataStatistics`, or bare
        :class:`~repro.core.stats.Statistics`.  A heterogeneous cluster
        (``ClusterConfig(machines=...)``) prices every strategy under
        the makespan objective; the table says so.
        """
        return _planner_plan(
            query,
            source,
            self.config.p,
            strategies=strategies,
            machines=resolve_machines(self.config.machines, self.config.p),
        )

    def run_many(
        self,
        jobs: Iterable[Job | tuple[ConjunctiveQuery, Database]],
        max_workers: int | None = None,
        pool: PoolKind | None = None,
        metrics_every: int | None = None,
    ) -> list[PlannedExecution]:
        """Run independent jobs concurrently over shared storage.

        ``jobs`` are :class:`Job` values (bare ``(query, database)``
        pairs are accepted); results return in job order.  Each job
        without an explicit seed runs with
        ``derive_seed(config.seed, index)``, so the results --
        answers, loads, truncation -- are identical whatever
        ``max_workers`` and ``pool`` are, including sequential
        execution at ``max_workers=1``.  ``max_workers=None`` picks
        ``min(cpu_count, 8, len(jobs))``.

        ``pool`` selects the batch concurrency mode: ``"thread"``
        (shared session and storage, the numpy-releases-the-GIL
        sweet spot), ``"process"`` (one worker process per job slot --
        each job runs in a throwaway session rebuilt from this
        session's config and returns a materialized result, sidestepping
        the GIL entirely), or ``"serial"``.  ``None`` follows
        ``config.pool`` / :func:`repro.config.default_pool`, except
        that the historical batch default -- threads -- applies when
        those resolve to serial.  Process mode requires picklable
        queries/databases and does not share the parent's storage
        manager (each worker derives its own from the config's memory
        budget); its records land in :attr:`history` like any other.

        All jobs' records append to :attr:`history` in job order after
        the batch completes.  When a job raises (an inapplicable
        pinned strategy, say), the remaining jobs still run, the
        *successful* jobs' records are still appended, and the first
        failure then re-raises -- so one bad job cannot erase a
        batch's worth of completed work from the history.

        The memory budget is advisory *per run*: a concurrent batch
        holds up to ``max_workers`` runs' working sets at once, so
        size ``memory_budget_bytes`` for the batch (divide a hard
        machine budget by the worker count) when it is tight.

        ``metrics_every=N`` prints one progress line per ``N``
        completed jobs (and at the end of the batch) -- jobs done,
        elapsed wall time, and the last run's strategy and latency.
        It works with or without ``ClusterConfig(metrics=True)``:
        the lines read :class:`RunRecord` fields, not the registry.
        """
        normalized = [self._coerce_job(job) for job in jobs]
        if not normalized:
            return []
        if metrics_every is not None and metrics_every < 1:
            raise ValueError("metrics_every must be >= 1")
        if max_workers is None:
            max_workers = min(os.cpu_count() or 1, 8, len(normalized))
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if pool is None:
            pool = resolve_pool(self.config.pool)
            if pool == "serial":
                # The historical run_many default: thread concurrency.
                pool = "thread"
        elif pool not in ("serial", "thread", "process"):
            raise ValueError(
                f"unknown pool kind {pool!r} "
                "(expected 'serial', 'thread' or 'process')"
            )
        indices = range(len(normalized))
        total = len(normalized)
        batch_started = time.perf_counter()  # repro: allow(wall-clock) -- progress-line timing only
        done = 0

        def note_done(record: RunRecord | None) -> None:
            """Emit the ``metrics_every`` progress line (parent only)."""
            nonlocal done
            if metrics_every is None:
                return
            done += 1
            if done % metrics_every and done != total:
                return
            elapsed = time.perf_counter() - batch_started  # repro: allow(wall-clock) -- progress-line timing only
            last = (
                f"last {record.strategy} "
                f"{record.wall_seconds * 1e3:.1f} ms"
                if record is not None
                else "last job failed"
            )
            print(
                f"[repro.metrics] {done}/{total} job(s) done, "
                f"{elapsed:.1f}s elapsed, {last}"
            )

        if pool == "process" and max_workers > 1 and len(normalized) > 1:
            worker_pool = get_pool("process", max_workers)
            tasks = [
                RunJobTask(config=self.config, job=job, index=index)
                for index, job in zip(indices, normalized)
            ]
            outcomes = []
            for result, record, error, delta in worker_pool.imap(
                run_job_task, tasks
            ):
                if delta is not None and self.metrics is not None:
                    # The worker session counted exactly this job; fold
                    # its shipped registry snapshot into the parent's
                    # views so the aggregate is pool-kind-independent.
                    self.metrics.merge(delta)
                    global_metrics().merge(delta)
                outcomes.append(
                    ((result, record) if error is None else None, error)
                )
                note_done(record if error is None else None)
        elif (
            pool == "serial" or max_workers == 1 or len(normalized) == 1
        ):
            outcomes = []
            for index, job in zip(indices, normalized):
                outcome = self._try_run_job(job, index)
                outcomes.append(outcome)
                note_done(outcome[0][1] if outcome[1] is None else None)
        else:
            with ThreadPoolExecutor(max_workers=max_workers) as executor:
                outcomes = []
                for outcome in executor.map(
                    self._try_run_job, normalized, indices
                ):
                    outcomes.append(outcome)
                    note_done(
                        outcome[0][1] if outcome[1] is None else None
                    )
        self._append_records(
            [pair[1] for pair, error in outcomes if error is None]
        )
        for _, error in outcomes:
            if error is not None:
                raise error
        return [pair[0] for pair, _ in outcomes]

    # -------------------------------------------------------------- history

    def workload_percentiles(
        self, quantiles: tuple[int, ...] = (50, 90, 99)
    ) -> dict[str, float]:
        """Percentiles of per-run maximum loads across the history."""
        loads = np.array(
            [record.max_load_bits for record in self.history],
            dtype=np.float64,
        )
        out = {
            f"p{q}": float(np.percentile(loads, q)) if len(loads) else 0.0
            for q in quantiles
        }
        out["max"] = float(loads.max()) if len(loads) else 0.0
        return out

    def workload_summary(self) -> str:
        """The accumulated history, one line per run plus percentiles."""
        machines = self.config.machines
        cluster = (
            f", machines {machines.describe()}"
            if machines is not None and not machines.is_uniform
            else ""
        )
        lines = [
            f"session workload: p={self.config.p}{cluster}, "
            f"{len(self.history)} run(s)"
        ]
        lines += [f"  {record.line()}" for record in self.history]
        if self.history:
            pct = self.workload_percentiles()
            lines.append(
                f"  per-run L percentiles: p50 {pct['p50']:.0f}, "
                f"p90 {pct['p90']:.0f}, p99 {pct['p99']:.0f}, "
                f"max {pct['max']:.0f} bits"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------ internals

    @staticmethod
    def _coerce_job(job: Job | tuple[ConjunctiveQuery, Database]) -> Job:
        if isinstance(job, Job):
            return job
        query, database = job
        return Job(query, database)

    def _try_run_job(
        self, job: Job, index: int
    ) -> tuple[tuple[PlannedExecution, RunRecord] | None, Exception | None]:
        """Run one batch job, capturing (not raising) its failure.

        ``run_many`` inspects the whole batch afterwards: successful
        records reach the history even when a sibling job failed.
        """
        try:
            return self._run_job(job, index), None
        except Exception as exc:
            return None, exc

    def _run_job(
        self, job: Job, index: int
    ) -> tuple[PlannedExecution, RunRecord]:
        seed = (
            derive_seed(self.config.seed, index)
            if job.seed is None
            else job.seed
        )
        return self._execute(
            job.query, job.database, job.strategy,
            shares=job.shares, exponents=job.exponents, hitters=job.hitters,
            plan=job.plan, stats=job.stats, seed=seed, label=job.label,
        )

    def _execute(
        self,
        query: ConjunctiveQuery,
        database: Database,
        strategy: str | None,
        *,
        shares: Mapping[str, int] | None,
        exponents: Mapping[str, float] | None,
        hitters: object | None,
        plan: Plan | None,
        stats: DataStatistics | None,
        seed: int | None,
        label: str | None,
    ) -> tuple[PlannedExecution, RunRecord]:
        if self._closed:
            raise RuntimeError("session is closed")
        settings = self.config.settings()
        storage = self._storage_for(database)
        if stats is None and storage is not None:
            # The engine defaults to *sampled* statistics under a
            # manager; a session promises decisions identical to the
            # in-memory path, so collect exact ones unless told not to.
            stats = DataStatistics.from_database(
                query, database, self.config.p
            )
        run_seed = self.config.seed if seed is None else seed
        recorder = (
            TraceRecorder() if self.config.trace is not None else None
        )
        # Each run collects into a fresh registry (so per-run totals
        # reconcile exactly with the run's LoadReport) that is merged
        # into the session and process-wide views afterwards.  The
        # context-variable scopes make every simulator and storage
        # manager constructed during this run record into this
        # recorder/registry -- including on a run_many worker thread,
        # where the context is private to the thread.
        run_metrics = MetricsRegistry() if self.metrics is not None else None
        started = time.perf_counter()  # repro: allow(wall-clock) -- RunRecord.wall_seconds telemetry
        with contextlib.ExitStack() as scope:
            if recorder is not None:
                scope.enter_context(tracing(recorder))
            if run_metrics is not None:
                scope.enter_context(collecting(run_metrics))
            result = self._planner_run(
                query, database, strategy, run_seed, stats, storage,
                settings, shares, exponents, hitters, plan,
            )
        wall = time.perf_counter() - started  # repro: allow(wall-clock) -- RunRecord.wall_seconds telemetry
        report = result.load_report
        if run_metrics is not None:
            ratio = report.prediction_ratio()
            if ratio is not None:
                run_metrics.calibration.observe(result.strategy, ratio)
            delta = run_metrics.snapshot()
            self.metrics.merge(delta)
            global_metrics().merge(delta)
        # The spec the run actually used (report.machines is set by the
        # simulator from the resolved settings; the config/default spec
        # is the fallback for executors that bypass a simulator).
        machines = report.machines
        if machines is None:
            machines = resolve_machines(settings.machines, self.config.p)
        heterogeneous = machines is not None and not machines.is_uniform
        trace_path: str | None = None
        if recorder is not None:
            trace = recorder.finish(
                report=report,
                meta={
                    "query": query.name or "q",
                    "strategy": result.strategy,
                    "label": label,
                    "seed": run_seed,
                    "version": _repro_version(),
                    "pool": resolve_pool(self.config.pool),
                    "machines": (
                        machines.describe() if machines is not None else None
                    ),
                },
                wall_seconds=wall,
            )
            trace_path = str(trace.write_jsonl(self._trace_file(
                label or query.name or "run"
            )))
        record = RunRecord(
            label=label,
            query=query.name or "q",
            strategy=result.strategy,
            p=self.config.p,
            seed=run_seed,
            rounds=report.num_rounds,
            max_load_bits=report.max_load_bits,
            total_bits=report.total_bits,
            dropped_bits=report.dropped_bits,
            predicted_bits=result.predicted_bits,
            percentiles=report.load_percentiles(),
            wall_seconds=wall,
            phase_seconds=dict(report.phase_seconds),
            phase_bytes=dict(report.phase_bytes),
            trace_path=trace_path,
            machines=(
                machines.describe() if heterogeneous else None
            ),
            makespan_bits=(
                report.makespan_bits if heterogeneous else None
            ),
        )
        return result, record

    def _planner_run(
        self,
        query: ConjunctiveQuery,
        database: Database,
        strategy: str | None,
        run_seed: int,
        stats: DataStatistics | None,
        storage: StorageManager | None,
        settings: ExecutionSettings,
        shares: Mapping[str, int] | None,
        exponents: Mapping[str, float] | None,
        hitters: object | None,
        plan: Plan | None,
    ) -> PlannedExecution:
        return _planner_execute(
            query,
            database,
            self.config.p,
            seed=run_seed,
            strategy=strategy,
            stats=stats,
            storage=storage,
            settings=settings,
            shares=shares,
            exponents=exponents,
            hitters=hitters,
            plan=plan,
            storage_optional=True,
        )

    def _trace_file(self, stem: str) -> pathlib.Path:
        """A fresh artifact path under the configured trace directory.

        Unique across the session's threads (counter under the lock)
        and across process-pool workers (each worker session is a new
        process, so the pid disambiguates).
        """
        directory = pathlib.Path(self.config.trace)
        directory.mkdir(parents=True, exist_ok=True)
        with self._lock:
            self._trace_counter += 1
            counter = self._trace_counter
        safe = _TRACE_SAFE_NAME.sub("_", stem)[:40] or "run"
        return directory / f"{safe}-{os.getpid()}-{counter:04d}.jsonl"

    def _append_records(self, records: list[RunRecord]) -> None:
        with self._lock:
            for record in records:
                if record.label is None:
                    record = replace(
                        record, label=f"run-{len(self.history)}"
                    )
                self.history.append(record)

    def __repr__(self) -> str:
        storage = self.storage
        return (
            f"Session(p={self.config.p}, backend="
            f"{self.config.backend or 'default'}, "
            f"runs={len(self.history)}"
            + (f", storage={storage.root}" if storage is not None else "")
            + ")"
        )
