"""Multi-round MPC computation (paper Section 5).

The upper-bound side (Section 5.1): queries in the class ``Gamma^r_eps``
have depth-``r`` query plans whose operators are each one-round
computable at load ``O(M/p^{1-eps})``; :mod:`repro.multiround.plans`
builds the paper's plans (bushy ``k_eps``-ary trees for chains, the
two-round ``SP_k`` plan, radius-based plans for cycles) and
:mod:`repro.multiround.executor` runs them round by round on the MPC
simulator.

The lower-bound side (Section 5.2): ``(eps, r)``-plans built from
*eps-good* atom sets certify that ``r + 1`` rounds are not enough
(Theorem 5.8/5.11), giving the round lower bounds of Corollaries
5.15/5.17 and Lemma 5.18, and -- via the layered-graph reduction of
Theorem 5.20 -- the ``Omega(log p)`` rounds needed for connected
components, whose tuple-based algorithm lives in
:mod:`repro.multiround.connected`.
"""

from repro.multiround.gamma import (
    in_gamma_1,
    k_epsilon,
    m_epsilon,
    rounds_upper_bound,
    space_exponent_for_one_round,
)
from repro.multiround.plans import (
    Plan,
    PlanNode,
    candidate_plans,
    chain_plan,
    cycle_plan,
    generic_plan,
    spk_plan,
    star_plan,
)
from repro.multiround.executor import MultiRoundResult, run_plan
from repro.multiround.good_sets import (
    EpsilonRPlan,
    chain_epsilon_r_plan,
    contract_to_survivors,
    cycle_epsilon_r_plan,
    is_epsilon_good,
    minimal_hard_subqueries,
    validate_plan,
)
from repro.multiround.lowerbounds import (
    beta_constant,
    chain_round_lower_bound,
    connected_components_round_lower_bound,
    cycle_round_lower_bound,
    reported_fraction_bound,
    tau_star_of_plan,
    tree_like_round_lower_bound,
)
from repro.multiround.connected import (
    ConnectedComponentsResult,
    connected_components_mpc,
)

__all__ = [
    "in_gamma_1",
    "k_epsilon",
    "m_epsilon",
    "rounds_upper_bound",
    "space_exponent_for_one_round",
    "Plan",
    "PlanNode",
    "candidate_plans",
    "chain_plan",
    "cycle_plan",
    "generic_plan",
    "spk_plan",
    "star_plan",
    "MultiRoundResult",
    "run_plan",
    "EpsilonRPlan",
    "chain_epsilon_r_plan",
    "contract_to_survivors",
    "cycle_epsilon_r_plan",
    "is_epsilon_good",
    "minimal_hard_subqueries",
    "validate_plan",
    "beta_constant",
    "chain_round_lower_bound",
    "connected_components_round_lower_bound",
    "cycle_round_lower_bound",
    "reported_fraction_bound",
    "tau_star_of_plan",
    "tree_like_round_lower_bound",
    "ConnectedComponentsResult",
    "connected_components_mpc",
]
