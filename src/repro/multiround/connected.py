"""Tuple-based MPC connected components (Theorem 5.20's subject).

Theorem 5.20 proves that any tuple-based MPC algorithm computing
connected components at load ``O(m/p^{1-eps})`` needs ``Omega(log p)``
rounds, via layered path graphs that embed the chain query ``L_k``.
This module provides the algorithms to *run* on those instances:

* ``hash_to_min`` -- each vertex keeps a cluster ``C_v`` (initially its
  closed neighbourhood); per round it sends ``C_v`` to the smallest
  member and the smallest member to everyone in ``C_v``.  Converges in
  ``O(log n)`` rounds (matching the lower bound's ``Theta(log p)``
  shape on the layered family), every message a (vertex, vertex) tuple
  -- squarely inside the tuple-based model.
* ``label_propagation`` -- classic min-label flooding; one round per
  unit of graph diameter.  The contrast between the two in the benches
  shows why the logarithmic algorithm matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal

from repro.core.stats import bits_per_value
from repro.hashing.family import HashFamily
from repro.mpc.report import LoadReport
from repro.mpc.simulator import MPCSimulation


@dataclass
class ConnectedComponentsResult:
    """Labels (vertex -> component id) plus execution accounting."""

    labels: dict[int, int]
    rounds: int
    report: LoadReport
    converged: bool

    def components(self) -> dict[int, set[int]]:
        out: dict[int, set[int]] = {}
        for vertex, label in self.labels.items():
            out.setdefault(label, set()).add(vertex)
        return out


def connected_components_mpc(
    edges: Iterable[tuple[int, int]],
    num_vertices: int,
    p: int,
    seed: int = 0,
    algorithm: Literal["hash_to_min", "label_propagation"] = "hash_to_min",
    max_rounds: int = 200,
) -> ConnectedComponentsResult:
    """Compute connected components on the MPC simulator.

    Vertices are hash-partitioned onto the ``p`` servers; round 1
    distributes the edges (the partitioned input exchange), subsequent
    rounds run the chosen tuple-based iteration until a global
    fixpoint.  Isolated vertices label themselves.
    """
    if num_vertices < 1:
        raise ValueError("need at least one vertex")
    edge_list = [(int(u), int(v)) for u, v in edges]
    for u, v in edge_list:
        if not (0 <= u < num_vertices and 0 <= v < num_vertices):
            raise ValueError(f"edge ({u}, {v}) outside vertex range")
    value_bits = bits_per_value(max(2, num_vertices))
    sim = MPCSimulation(p, value_bits=value_bits)
    home = HashFamily(seed).function(0, p)

    # Round 1: deliver each edge to both endpoints' home servers.
    sim.begin_round()
    batches: dict[int, list[tuple[int, int]]] = {}
    for u, v in edge_list:
        batches.setdefault(home(u), []).append((u, v))
        if home(v) != home(u):
            batches.setdefault(home(v), []).append((u, v))
        else:
            batches[home(u)].append((u, v))
    for server, batch in batches.items():
        sim.send(server, "edges", batch)
    sim.end_round()

    # Local state: cluster (or label) per vertex, kept at its home server.
    clusters: dict[int, set[int]] = {v: {v} for v in range(num_vertices)}
    neighbours: dict[int, set[int]] = {v: set() for v in range(num_vertices)}
    for server in range(p):
        for u, v in sim.state(server).get("edges", ()):
            neighbours[u].add(v)
            neighbours[v].add(u)
    for v in range(num_vertices):
        clusters[v] |= neighbours[v]

    if algorithm == "hash_to_min":
        converged = _hash_to_min(sim, home, clusters, max_rounds)
        labels = {v: min(c) for v, c in clusters.items()}
        # Propagate through the minimum's final cluster: the minimum
        # vertex of each component knows all members.
        for v, cluster in clusters.items():
            if min(cluster) == v:
                for w in cluster:
                    labels[w] = min(labels[w], v)
    elif algorithm == "label_propagation":
        converged = _label_propagation(sim, home, clusters, neighbours, max_rounds)
        labels = {v: min(c) for v, c in clusters.items()}
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")

    return ConnectedComponentsResult(
        labels=labels,
        rounds=sim.rounds_executed,
        report=sim.report,
        converged=converged,
    )


def _hash_to_min(sim, home, clusters, max_rounds) -> bool:
    """Rastogi et al.'s Hash-to-Min, on the simulator.

    Per round, vertex ``v`` with cluster ``C_v`` and ``m = min(C_v)``
    sends ``C_v`` to ``m`` and ``{m}`` to every member; the new ``C_v``
    is the union of everything received.
    """
    for _ in range(max_rounds):
        sim.begin_round()
        outbox: dict[int, list[tuple[int, int]]] = {}
        for v, cluster in clusters.items():
            if len(cluster) == 1:
                continue
            smallest = min(cluster)
            for w in cluster:
                # (target, member): target's cluster gains member.
                outbox.setdefault(home(smallest), []).append((smallest, w))
                outbox.setdefault(home(w), []).append((w, smallest))
        for server, batch in outbox.items():
            sim.send(server, "h2m", batch)
        sim.end_round()

        incoming: dict[int, set[int]] = {}
        for server in range(sim.p):
            for target, member in sim.state(server).get("h2m", ()):
                incoming.setdefault(target, set()).add(member)
        sim.clear_all("h2m")

        changed = False
        for v in clusters:
            if v in incoming:
                new_cluster = incoming[v] | {v}
            else:
                new_cluster = {min(clusters[v]), v}
            if new_cluster != clusters[v]:
                changed = True
            clusters[v] = new_cluster
        if not changed:
            return True
    return False


def _label_propagation(sim, home, clusters, neighbours, max_rounds) -> bool:
    """Min-label flooding: one round per unit of component diameter."""
    labels = {v: min(c) for v, c in clusters.items()}
    for _ in range(max_rounds):
        sim.begin_round()
        outbox: dict[int, list[tuple[int, int]]] = {}
        for v, label in labels.items():
            for u in neighbours[v]:
                outbox.setdefault(home(u), []).append((u, label))
        for server, batch in outbox.items():
            sim.send(server, "lp", batch)
        sim.end_round()

        changed = False
        for server in range(sim.p):
            for target, label in sim.state(server).get("lp", ()):
                if label < labels[target]:
                    labels[target] = label
                    changed = True
        sim.clear_all("lp")
        if not changed:
            for v in labels:
                clusters[v] = {labels[v]}
            return True
    for v in labels:
        clusters[v] = {labels[v]}
    return False
