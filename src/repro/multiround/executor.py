"""Round-by-round execution of query plans on the MPC simulator.

All plan nodes of depth ``d`` execute in communication round ``d``: the
inputs of each operator (base relations from the input servers, or view
fragments from the servers that produced them in an earlier round) are
HyperCube-routed onto the full ``p``-server grid for that operator, and
every server then joins its fragments locally.  Intermediate results
stay where they are produced; only the routing of the *next* round
moves them, exactly as in the tuple-based MPC model (servers forward
join tuples whose destinations depend only on the tuple).

Nodes sharing a round share the ``p`` servers, so per-round loads add
across the (constantly many) parallel operators -- the constant-factor
regime of Proposition 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.query import Atom, ConjunctiveQuery
from repro.core.shares import integerize_shares, share_exponents
from repro.core.stats import Statistics
from repro.data.database import Database
from repro.hashing.family import GridPartitioner, HashFamily
from repro.hypercube.algorithm import route_relation
from repro.join.binary import reorder
from repro.join.multiway import evaluate_on_fragments
from repro.mpc.report import LoadReport
from repro.mpc.simulator import MPCSimulation
from repro.multiround.plans import Plan, PlanNode


@dataclass
class MultiRoundResult:
    """Answers plus per-round load accounting for a plan execution."""

    plan: Plan
    answers: set[tuple[int, ...]]
    report: LoadReport
    simulation: MPCSimulation
    rounds: int

    @property
    def max_load_bits(self) -> float:
        return self.report.max_load_bits


def run_plan(
    plan: Plan,
    database: Database,
    p: int,
    seed: int = 0,
) -> MultiRoundResult:
    """Execute ``plan`` in ``plan.depth`` rounds on ``p`` servers.

    The final answers are reordered to the plan query's head order, so
    results compare directly against the sequential evaluator.
    """
    if p < 2:
        raise ValueError("plan execution needs p >= 2")
    database.validate_for(plan.query)
    stats = database.statistics(plan.query)
    sim = MPCSimulation(p, value_bits=stats.value_bits)

    by_depth = plan.root.nodes_by_depth()
    # view name -> (schema, per-server fragments)
    produced: dict[str, list[set[tuple[int, ...]]]] = {}
    schema_of: dict[str, tuple[str, ...]] = {}

    for depth in sorted(by_depth):
        nodes = by_depth[depth]
        grids: dict[str, GridPartitioner] = {}
        sim.begin_round()
        for node in nodes:
            operator = node.operator
            sizes = {}
            for child in node.children:
                if isinstance(child, Atom):
                    sizes[child.relation] = len(database[child.relation])
                else:
                    sizes[child.name] = sum(
                        len(chunk) for chunk in produced[child.name]
                    )
            op_stats = Statistics(operator, sizes, database.domain_size)
            exponents = share_exponents(operator, op_stats, p).exponents
            shares = integerize_shares(exponents, p)
            grid = GridPartitioner(
                [shares[v] for v in operator.variables],
                HashFamily(seed * 7919 + _stable_salt(node.name)),
            )
            grids[node.name] = grid
            for child in node.children:
                if isinstance(child, Atom):
                    tag = child.relation
                    child_schema = child.variables
                    sources = [database[child.relation].tuples]
                else:
                    tag = child.name
                    child_schema = schema_of[child.name]
                    sources = produced[child.name]
                batches: dict[int, list[tuple[int, ...]]] = {}
                for source in sources:
                    for server, t in route_relation(
                        grid, operator.variables, child_schema, source
                    ):
                        batches.setdefault(server, []).append(t)
                for server, batch in batches.items():
                    sim.send(server, tag, batch)
        sim.end_round()

        # Computation phase: evaluate each operator on every server.
        for node in nodes:
            operator = node.operator
            fragments = [
                evaluate_on_fragments(operator, sim.state(server))
                for server in range(grids[node.name].num_bins)
            ]
            fragments += [set()] * (p - len(fragments))
            produced[node.name] = fragments
            schema_of[node.name] = operator.variables
        # Free delivered fragments: the next round re-routes views anyway.
        sim.clear_all()

    root = plan.root
    union: set[tuple[int, ...]] = set()
    for server, chunk in enumerate(produced[root.name]):
        if chunk:
            sim.output(server, chunk)
            union |= chunk
    answers = reorder(union, schema_of[root.name], plan.query.variables)
    return MultiRoundResult(
        plan=plan,
        answers=answers,
        report=sim.report,
        simulation=sim,
        rounds=sim.rounds_executed,
    )


def _stable_salt(name: str) -> int:
    out = 0
    for ch in name:
        out = (out * 131 + ord(ch)) % 1_000_003
    return out + 1
