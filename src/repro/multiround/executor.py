"""Round-by-round execution of query plans on the MPC simulator.

All plan nodes of depth ``d`` execute in communication round ``d``: the
inputs of each operator (base relations from the input servers, or view
fragments from the servers that produced them in an earlier round) are
HyperCube-routed onto the full ``p``-server grid for that operator, and
every server then joins its fragments locally.  Intermediate results
stay where they are produced; only the routing of the *next* round
moves them, exactly as in the tuple-based MPC model (servers forward
join tuples whose destinations depend only on the tuple).

Nodes sharing a round share the ``p`` servers, so per-round loads add
across the (constantly many) parallel operators -- the constant-factor
regime of Proposition 5.1.  Each send is tagged
``"<node name>/<input name>"``: fragments belong to the *consuming*
operator, never to the bare relation, so two same-round operators
reading the same base relation or view keep their differently-routed
fragments apart on every server.

Two execution backends share the driver (``backend=None`` follows
:func:`repro.config.default_backend`):

* ``backend="tuples"`` routes and joins one Python tuple at a time --
  the original reference path and the repo's ground truth.
* ``backend="numpy"`` keeps every intermediate view as one
  ``(n, arity)`` int64 array per server between rounds, routes base
  relations and view fragments with
  :func:`~repro.hypercube.algorithm.route_relation_arrays`, ships array
  payloads through :meth:`MPCSimulation.send_array` (identical bit
  accounting), and joins each server's fragments with the vectorized
  evaluator.  Answers and per-server/per-round loads are bit-identical
  to the tuple path; ``tests/multiround/test_executor_backends.py``
  enforces it.

``capacity_bits`` imposes the same hard per-server per-round cap ``L``
that :func:`~repro.hypercube.algorithm.run_hypercube` supports: every
round of the plan enforces it, and because both backends (and the
chunked path) route each relation and view in canonical row order, a
binding cap with ``on_overflow="drop"`` truncates the identical
per-server prefix everywhere -- dropped tuples then propagate
identically through later rounds.

``storage`` switches the columnar backend to out-of-core mode: base
relations and view fragments stream through the router chunk-by-chunk,
delivered fragments spill to per-server chunked spools, and the
inter-round views themselves are kept as
:class:`~repro.storage.chunked.ChunkedRelation` spools -- so an
intermediate blow-up spills to disk instead of pinning RAM, and views
past their last consumer delete their spill files eagerly.
"""

from __future__ import annotations

import hashlib
from typing import Literal

import numpy as np

from repro.config import ExecutionSettings, MachineSpec
from repro.core.query import Atom, ConjunctiveQuery
from repro.data.arrays import unique_rows
from repro.core.shares import integerize_shares, share_exponents
from repro.core.stats import Statistics
from repro.data.database import Database
from repro.hashing.family import (
    GridPartitioner,
    HashFamily,
    derive_seed,
    grid_dimension_weights,
)
from repro.hypercube.algorithm import route_relation
from repro.join.binary import reorder
from repro.join.multiway import evaluate_on_fragments
from repro.mpc.report import LoadReport
from repro.mpc.simulator import MPCSimulation
from repro.mpc.timing import PhaseTimer
from repro.multiround.plans import Plan
from repro.parallel.pool import PoolKind, get_pool
from repro.parallel.tasks import (
    RouteTask,
    iter_array_sources,
    join_over_pool,
    route_over_pool,
)
from repro.storage.chunked import ChunkedRelation
from repro.storage.manager import StorageManager


class MultiRoundResult:
    """Answers plus per-round load accounting for a plan execution.

    ``answers`` materializes the Python answer set lazily from the
    simulation's outputs (converting millions of array-backed answers
    into tuples dominates a columnar run, so it only happens when asked);
    ``answers_array`` exposes the columnar form directly.

    ``view_fragments`` maps plan-node names to their per-server result
    fragments in node-schema order (tuple sets on the tuple backend,
    ``(n, arity)`` arrays on the columnar one).  By default only the
    root's fragments are retained -- holding every intermediate view of
    a large columnar run alive would pin all of its memory to the
    result object; ``run_plan(..., keep_view_fragments=True)`` keeps
    them all (tests use this to pin down per-operator routing).

    Satisfies the :class:`repro.session.RunResult` protocol, so plan
    executions interchange with every other executor's result.
    """

    def __init__(
        self,
        plan: Plan,
        schema: tuple[str, ...],
        report: LoadReport,
        simulation: MPCSimulation,
        rounds: int,
        view_fragments: dict[str, list],
        strategy: str = "multiround",
    ):
        self.plan = plan
        self.schema = schema
        self.report = report
        self.simulation = simulation
        self.rounds = rounds
        self.view_fragments = view_fragments
        self.strategy = strategy
        self._answers: set[tuple[int, ...]] | None = None

    @property
    def answers(self) -> set[tuple[int, ...]]:
        """The distinct answers, reordered to the plan query's head."""
        if self._answers is None:
            self._answers = reorder(
                self.simulation.outputs(), self.schema, self.plan.query.variables
            )
        return self._answers

    def answers_array(self) -> np.ndarray:
        """The distinct answers as a canonical ``(n, k)`` int64 array."""
        rows = self.simulation.outputs_array(len(self.schema))
        head = self.plan.query.variables
        permuted = rows[:, [self.schema.index(v) for v in head]]
        return unique_rows(permuted)

    @property
    def max_load_bits(self) -> float:
        return self.report.max_load_bits

    @property
    def load_report(self) -> LoadReport:
        return self.report

    @property
    def predicted_bits(self) -> float | None:
        """The cost model's load prediction (None unless attached)."""
        return self.report.predicted_load_bits

    def __repr__(self) -> str:
        return (
            f"MultiRoundResult(query={self.plan.query.name or 'q'!r}, "
            f"rounds={self.rounds}, L={self.report.max_load_bits:.0f} bits)"
        )


def run_plan(
    plan: Plan,
    database: Database,
    p: int,
    seed: int = 0,
    backend: Literal["tuples", "numpy"] | None = None,
    keep_view_fragments: bool = False,
    capacity_bits: float | None = None,
    on_overflow: Literal["fail", "drop"] = "fail",
    *,
    hash_method: str = "splitmix64",
    storage: StorageManager | None = None,
    chunk_rows: int | None = None,
    pool: PoolKind | None = None,
    max_workers: int | None = None,
    machines: MachineSpec | None = None,
) -> MultiRoundResult:
    """Execute ``plan`` in ``plan.depth`` rounds on ``p`` servers.

    The final answers are reordered to the plan query's head order, so
    results compare directly against the sequential evaluator.
    ``backend`` selects the execution engine (``None``: the system
    default, see :func:`repro.config.set_default_backend`); both
    backends produce bit-identical answers and loads.
    ``keep_view_fragments`` retains every intermediate view's
    per-server fragments on the result (default: root only).

    ``capacity_bits`` applies :class:`MPCSimulation`'s per-server
    per-round cap ``L`` to every round of the plan --
    ``on_overflow="fail"`` raises
    :class:`~repro.mpc.simulator.LoadExceededError`, ``"drop"``
    truncates the same canonical per-server prefix under every backend.
    ``storage`` (numpy backend only) spools delivered fragments and
    inter-round views to disk-backed chunks; ``chunk_rows`` sets the
    routing granularity (defaults to the manager's).  Lazy result
    accessors (``answers``, ``answers_array()``) read the spooled
    outputs, so materialize them *before* closing the manager.

    ``pool``/``max_workers`` fan each round's columnar routing and
    per-server operator joins out over a worker pool; results merge
    deterministically, so answers and per-round loads are bit-identical
    at any worker count.

    ``machines`` (a heterogeneous :class:`~repro.config.MachineSpec`)
    weights every round's per-operator grids speed-proportionally
    (marginals over each operator's share cube) and applies per-server
    capacities to every round's cap enforcement.  A uniform spec is
    bit-identical to ``machines=None``.

    A thin delegating wrapper over the shared run path of
    :mod:`repro.session`.
    """
    from repro.session import dispatch_run

    return dispatch_run(
        "multiround",
        plan.query,
        database,
        p,
        seed=seed,
        storage=storage,
        settings=ExecutionSettings(
            backend=backend,
            capacity_bits=capacity_bits,
            on_overflow=on_overflow,
            hash_method=hash_method,
            chunk_rows=chunk_rows,
            pool=pool,
            max_workers=max_workers,
            machines=machines,
        ),
        plan=plan,
        keep_view_fragments=keep_view_fragments,
    )


def _multiround_impl(
    query: ConjunctiveQuery,
    database: Database,
    p: int,
    *,
    seed: int,
    settings: ExecutionSettings,
    storage: StorageManager | None,
    plan: Plan,
    keep_view_fragments: bool = False,
) -> MultiRoundResult:
    """The plan-execution core; ``settings`` arrives already resolved."""
    backend = settings.backend
    chunk_rows = settings.chunk_rows
    timer = PhaseTimer()
    pool = get_pool(settings.pool, settings.max_workers)
    if p < 2:
        raise ValueError("plan execution needs p >= 2")
    if query != plan.query:
        raise ValueError(
            f"plan answers {plan.query.name or plan.query!r}, "
            f"not {query.name or query!r}"
        )
    with timer.phase("generate"):
        database.validate_for(plan.query)
        stats = database.statistics(plan.query)
    sim = MPCSimulation(
        p,
        value_bits=stats.value_bits,
        capacity_bits=settings.capacity_bits,
        on_overflow=settings.on_overflow,
        storage=storage,
        timer=timer,
        machines=settings.machines,
    )

    by_depth = plan.root.nodes_by_depth()
    # Fragments are tagged "<node>/<input>"; a "/" inside a node name
    # (or a reused name) would let one operator absorb another's
    # differently-routed fragments -- exactly the mixing the
    # namespacing prevents.
    seen_names: set[str] = set()
    last_consumed: dict[str, int] = {}  # view name -> last consuming round
    for node_depth, nodes in by_depth.items():
        for node in nodes:
            if "/" in node.name:
                raise ValueError(
                    f"plan node name {node.name!r} must not contain '/'"
                )
            if node.name in seen_names:
                raise ValueError(f"duplicate plan node name {node.name!r}")
            seen_names.add(node.name)
            for child in node.children:
                if not isinstance(child, Atom):
                    last_consumed[child.name] = max(
                        last_consumed.get(child.name, 0), node_depth
                    )
    # view name -> per-server fragments (tuple sets or (n, arity) arrays)
    produced: dict[str, list] = {}
    schema_of: dict[str, tuple[str, ...]] = {}

    for depth in sorted(by_depth):
        nodes = by_depth[depth]
        grids: dict[str, GridPartitioner] = {}
        with timer.phase("generate"):
            # Grids first (no simulator effects), so the routing below
            # can fan out over the pool in one stream per round.
            for node in nodes:
                operator = node.operator
                sizes = {}
                for child in node.children:
                    if isinstance(child, Atom):
                        sizes[child.relation] = len(database[child.relation])
                    else:
                        sizes[child.name] = sum(
                            len(chunk) for chunk in produced[child.name]
                        )
                op_stats = Statistics(operator, sizes, database.domain_size)
                exponents = share_exponents(operator, op_stats, p).exponents
                shares = integerize_shares(exponents, p)
                share_list = [shares[v] for v in operator.variables]
                grids[node.name] = GridPartitioner(
                    share_list,
                    HashFamily(derive_seed(seed, _stable_salt(node.name)),
                               method=settings.hash_method),
                    weights=grid_dimension_weights(
                        share_list, settings.machines
                    ),
                )
        sim.begin_round()
        if backend == "numpy":
            # One task per (node, child, fragment, chunk), in the exact
            # nested order of the serial loop; results merge in task
            # order, so every send replays the serial sequence.  Tags
            # are namespaced by the consuming node: two same-round
            # operators reading the same input route it under different
            # grids and must not share server state.
            def round_tasks(nodes=nodes):
                for node in nodes:
                    operator = node.operator
                    grid = grids[node.name]
                    for child in node.children:
                        if isinstance(child, Atom):
                            name = child.relation
                            child_schema = child.variables
                            sources = [database[child.relation]]
                        else:
                            name = child.name
                            child_schema = schema_of[child.name]
                            sources = produced[child.name]
                        for fragment in sources:
                            for source in iter_array_sources(
                                fragment, chunk_rows
                            ):
                                yield RouteTask(
                                    tag=f"{node.name}/{name}",
                                    source=source,
                                    dimension_variables=tuple(
                                        operator.variables
                                    ),
                                    atom_variables=tuple(child_schema),
                                    shares=tuple(grid.shares),
                                    family_seed=derive_seed(
                                        seed, _stable_salt(node.name)
                                    ),
                                    hash_method=settings.hash_method,
                                    weights=grid.weights,
                                )

            with timer.phase("route"):
                route_over_pool(pool, sim, round_tasks(), timer)
        else:
            with timer.phase("route"):
                for node in nodes:
                    operator = node.operator
                    grid = grids[node.name]
                    for child in node.children:
                        if isinstance(child, Atom):
                            name = child.relation
                            child_schema = child.variables
                            # Canonical order, so a binding capacity
                            # cap truncates the same per-server prefix
                            # as the columnar (sorted-array) path.
                            sources = [
                                database[child.relation].sorted_tuples()
                            ]
                        else:
                            name = child.name
                            child_schema = schema_of[child.name]
                            sources = [
                                sorted(chunk)
                                for chunk in produced[child.name]
                            ]
                        tag = f"{node.name}/{name}"
                        batches: dict[int, list[tuple[int, ...]]] = {}
                        for source in sources:
                            for server, t in route_relation(
                                grid, operator.variables, child_schema, source
                            ):
                                batches.setdefault(server, []).append(t)
                        for server, batch in batches.items():
                            sim.send(server, tag, batch)
        sim.end_round()

        # Computation phase: evaluate each operator on every server of
        # its grid (servers beyond ``num_bins`` receive nothing and
        # produce nothing -- they are padded with empty fragments).
        for node in nodes:
            operator = node.operator
            width = len(operator.variables)
            prefix = f"{node.name}/"
            fragments: list = []
            if backend == "numpy":
                # Per-server joins fan out over the pool; fragments are
                # collected (and spooled) in server order on the parent.
                # No per-server clear: same-round operators share
                # servers, so delivered fragments are freed only after
                # every node's joins (sim.clear_all below).
                def collect(server: int, local, node=node, width=width,
                            fragments=fragments):
                    if local is None:
                        local = np.empty((0, width), dtype=np.int64)
                    if storage is not None:
                        # Inter-round views spill too: an intermediate
                        # blow-up lands on disk, not in RAM.
                        spool = storage.spool(
                            f"{node.name}-s{server}", width
                        )
                        spool.append(local)
                        fragments.append(spool)
                    else:
                        fragments.append(local)

                with timer.phase("join"):
                    join_over_pool(
                        pool,
                        sim,
                        operator,
                        range(grids[node.name].num_bins),
                        prefix=prefix,
                        timer=timer,
                        on_result=collect,
                    )
            else:
                with timer.phase("join"):
                    for server in range(grids[node.name].num_bins):
                        state = sim.state(server)
                        local_inputs = {
                            tag[len(prefix):]: tuples
                            for tag, tuples in state.items()
                            if tag.startswith(prefix)
                        }
                        fragments.append(
                            evaluate_on_fragments(operator, local_inputs)
                        )
            if backend == "numpy":
                empty = np.empty((0, width), dtype=np.int64)
                fragments += [empty] * (p - len(fragments))
            else:
                fragments += [set()] * (p - len(fragments))
            produced[node.name] = fragments
            schema_of[node.name] = operator.variables
        # Free delivered fragments: the next round re-routes views anyway.
        sim.clear_all()
        # Free views past their last consumer, so a deep columnar run
        # holds at most the live generations, not every intermediate.
        if not keep_view_fragments:
            for name, last in last_consumed.items():
                if last == depth and name != plan.root.name:
                    stale = produced.pop(name, None)
                    if stale is not None and storage is not None:
                        for fragment in stale:
                            if isinstance(fragment, ChunkedRelation):
                                fragment.drop()

    root = plan.root
    for server, chunk in enumerate(produced[root.name]):
        if len(chunk) == 0:
            continue
        if isinstance(chunk, ChunkedRelation):
            # The root view already lives in manager-owned spools;
            # adopting them avoids re-spilling the whole result.
            sim.adopt_output_spool(server, chunk)
        elif backend == "numpy":
            sim.output_array(server, chunk)
        else:
            sim.output(server, chunk)
    retained = (
        produced if keep_view_fragments else {root.name: produced[root.name]}
    )
    timer.attach(sim.report)
    return MultiRoundResult(
        plan=plan,
        schema=schema_of[root.name],
        report=sim.report,
        simulation=sim,
        rounds=sim.rounds_executed,
        view_fragments=retained,
    )


def _stable_salt(name: str) -> int:
    """A full-width 64-bit salt for a node name.

    Feeds :func:`~repro.hashing.family.derive_seed`; a small residue
    space here (the old ``mod 1_000_003`` rolling hash) would bottleneck
    the 64-bit seed mixing and let distinct node names share a hash
    family at birthday-collision rates.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")
