"""Multi-round round-count lower bounds (Section 5.2-5.3).

Given an ``(eps, r)``-plan, Theorem 5.11 bounds the expected number of
answers any tuple-based MPC algorithm using ``r + 1`` rounds at load
``L`` can report:

.. math::
    \\beta(q, \\mathcal{M}) \\cdot
    \\Big(\\frac{(r+1) L}{M}\\Big)^{\\tau^*(\\mathcal{M})} \\, p
    \\cdot E[|q(I)|]

so load ``L <= c M / p^{1-eps}`` with small ``c`` forces failure
(Theorem 5.8).  The corollaries instantiate the plans of Lemmas 5.6 and
5.7:

* ``L_k`` needs at least ``ceil(log_{k_eps} k)`` rounds (Cor. 5.15);
* tree-like ``q`` needs at least ``ceil(log_{k_eps} diam(q))``
  (Cor. 5.17);
* ``C_k`` needs at least ``floor(log_{k_eps}(k/(m_eps+1))) + 2``
  (Lemma 5.18);
* connected components on ``m``-edge graphs need ``Omega(log p)``
  rounds at load ``O(m/p^{1-eps})`` (Theorem 5.20).
"""

from __future__ import annotations

import math

from repro.core.packing import fractional_vertex_cover_number
from repro.core.query import ConjunctiveQuery
from repro.multiround.gamma import k_epsilon, m_epsilon
from repro.multiround.good_sets import (
    EpsilonRPlan,
    minimal_hard_subqueries,
)


def chain_round_lower_bound(k: int, eps: float = 0.0) -> int:
    """Corollary 5.15: rounds needed for ``L_k`` at load ``O(M/p^{1-eps})``.

    Tight: the Lemma 5.4 plan achieves exactly this many rounds.
    """
    ke = k_epsilon(eps)
    if k <= ke:
        return 1
    return math.ceil(math.log(k, ke))


def tree_like_round_lower_bound(query: ConjunctiveQuery, eps: float = 0.0) -> int:
    """Corollary 5.17: ``ceil(log_{k_eps} diam(q))`` for tree-like ``q``."""
    if not query.is_tree_like:
        raise ValueError("Corollary 5.17 applies to tree-like queries")
    diameter = query.diameter
    ke = k_epsilon(eps)
    if diameter <= ke:
        return 1
    return math.ceil(math.log(diameter, ke))


def cycle_round_lower_bound(k: int, eps: float = 0.0) -> int:
    """Lemma 5.18: ``floor(log_{k_eps}(k/(m_eps+1))) + 2`` for ``C_k``."""
    me = m_epsilon(eps)
    if k <= me:
        return 1
    ke = k_epsilon(eps)
    return math.floor(math.log(k / (me + 1), ke)) + 2


def connected_components_round_lower_bound(p: int, eps: float = 0.0) -> int:
    """Theorem 5.20's ``Omega(log p)`` round count for CC.

    The proof takes ``eps = 1 - 1/t``, ``delta = 1/(2t(t+2))``, builds a
    layered graph realizing ``L_k`` with ``k = floor(p^delta)``, and
    applies Corollary 5.15: at least ``ceil(log_{k_eps} k) - 2`` rounds.
    """
    if p < 2:
        raise ValueError("p must be >= 2")
    t = max(2, math.ceil(1.0 / (1.0 - eps)))
    delta = 1.0 / (2 * t * (t + 2))
    ke = k_epsilon(1.0 - 1.0 / t)
    log_k = delta * math.log(p)  # ln of p^delta (overflow-safe)
    if log_k < 50:
        k = max(2, math.floor(math.exp(log_k)))
        log_k = math.log(k)
    return max(0, math.ceil(log_k / math.log(ke)) - 2)


def tau_star_of_plan(plan: EpsilonRPlan) -> float:
    """Definition 5.9's ``tau*(M)``.

    The minimum of ``tau*(q|M_r)`` and ``tau*(q')`` over connected
    subqueries ``q'`` of each stage query that are not in
    ``Gamma^1_eps`` (the minimum is attained on the minimal ones since
    ``tau*`` is monotone under subqueries).
    """
    stages = plan.stage_queries()
    best = fractional_vertex_cover_number(stages[-1])
    for stage_query in stages[:-1]:
        for sub in minimal_hard_subqueries(stage_query, plan.eps):
            best = min(best, fractional_vertex_cover_number(sub))
    return best


def beta_constant(plan: EpsilonRPlan) -> float:
    """Theorem 5.11's constant ``beta(q, M)``."""
    tau_m = tau_star_of_plan(plan)
    stages = plan.stage_queries()
    total = (1.0 / fractional_vertex_cover_number(stages[-1])) ** tau_m
    for stage_query in stages[:-1]:
        for sub in minimal_hard_subqueries(stage_query, plan.eps):
            total += (1.0 / fractional_vertex_cover_number(sub)) ** tau_m
    return total


def reported_fraction_bound(
    plan: EpsilonRPlan,
    load_bits: float,
    relation_bits: float,
    p: int,
) -> float:
    """Theorem 5.11: max fraction of ``E[|q(I)|]`` reported in ``r+1``
    rounds at load ``load_bits`` (relations of equal size
    ``relation_bits``).  Clipped to 1."""
    if relation_bits <= 0:
        raise ValueError("relation size must be positive")
    if load_bits <= 0:
        return 0.0
    r = plan.r
    tau_m = tau_star_of_plan(plan)
    fraction = (
        beta_constant(plan)
        * ((r + 1) * load_bits / relation_bits) ** tau_m
        * p
    )
    return min(1.0, fraction)


def load_constant_for_failure(plan: EpsilonRPlan, p: int) -> float:
    """The largest ``c`` such that load ``c*M/p^{1-eps}`` provably fails.

    Derived from Theorem 5.11 by requiring the reported fraction to
    stay below 1/9 (Lemma 3.8's constant): any tuple-based algorithm
    with ``r + 1`` rounds then fails with probability ``Omega(1)``.
    """
    r = plan.r
    tau_m = tau_star_of_plan(plan)
    beta = beta_constant(plan)
    # fraction = beta * ((r+1) c / p^{1-eps})^{tau_m} * p < 1/9
    inner = (1.0 / (9.0 * beta * p)) ** (1.0 / tau_m)
    return inner * p ** (1.0 - plan.eps) / (r + 1)
