"""Query plans for multi-round MPC execution (Section 5.1).

A :class:`Plan` is a tree whose leaves are base relations and whose
internal nodes are one-round operators: each node joins its children's
schemas with a single HyperCube step.  All nodes at the same depth run
in the same communication round (Proposition 5.1's parallel view
computation), so a plan of depth ``r`` runs in ``r`` rounds.

Builders:

* :func:`chain_plan` -- the bushy ``k_eps``-ary tree for ``L_k``
  (Example 5.2: ``L_16`` with ``eps = 1/2`` is two rounds of 4-way
  joins at load ``O(M/sqrt(p))``).
* :func:`cycle_plan` -- Lemma 5.4 for ``C_k``: two arcs of length
  ``~k/2`` built as chains, closed in one final round.
* :func:`star_plan` -- ``T_k`` is one round.
* :func:`spk_plan` -- Example 5.3: pair joins, then a star join on
  ``z`` (two rounds at load ``O(M/p)``).
* :func:`generic_plan` -- any connected query via a balanced
  ``fanout``-ary bushy tree over connected atom groups.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from repro.core.families import chain_query, cycle_query, spk_query, star_query
from repro.core.query import Atom, ConjunctiveQuery
from repro.multiround.gamma import k_epsilon


@dataclass(frozen=True)
class PlanNode:
    """One operator: join the children (views or base atoms) in a round.

    ``children`` hold either :class:`PlanNode` (views computed in the
    previous round) or :class:`Atom` (base relations).  ``operator`` is
    the one-round conjunctive query over the children's schemas; its
    head is the node's ``schema``.
    """

    name: str
    children: tuple["PlanNode | Atom", ...]

    @property
    def operator(self) -> ConjunctiveQuery:
        atoms = []
        for child in self.children:
            if isinstance(child, Atom):
                atoms.append(child)
            else:
                atoms.append(Atom(child.name, child.schema))
        return ConjunctiveQuery(tuple(atoms), name=f"op:{self.name}")

    @property
    def schema(self) -> tuple[str, ...]:
        return self.operator.variables

    @property
    def depth(self) -> int:
        child_depths = [
            c.depth for c in self.children if isinstance(c, PlanNode)
        ]
        return 1 + max(child_depths, default=0)

    def nodes_by_depth(self) -> dict[int, list["PlanNode"]]:
        """All plan nodes grouped by the round in which they execute.

        A node shared by several parents (a DAG-shaped plan, e.g. one
        view feeding two same-round consumers) appears exactly once:
        it executes once and each consumer routes its result fragments
        separately in the consumer's round.
        """
        out: dict[int, list[PlanNode]] = {}
        depth_of: dict[PlanNode, int] = {}

        def visit(node: "PlanNode") -> int:
            if node in depth_of:
                return depth_of[node]
            depths = [
                visit(c) for c in node.children if isinstance(c, PlanNode)
            ]
            depth = 1 + max(depths, default=0)
            depth_of[node] = depth
            out.setdefault(depth, []).append(node)
            return depth

        visit(self)
        return out


@dataclass(frozen=True)
class Plan:
    """A complete plan: the root node plus the query it computes."""

    query: ConjunctiveQuery
    root: PlanNode

    @property
    def depth(self) -> int:
        """Rounds needed: one per plan level."""
        return self.root.depth

    def describe(self) -> str:
        lines = [f"plan for {self.query.name or 'q'} ({self.depth} rounds)"]
        for depth, nodes in sorted(self.root.nodes_by_depth().items()):
            ops = ", ".join(
                f"{n.name}<-({'+'.join(_child_name(c) for c in n.children)})"
                for n in nodes
            )
            lines.append(f"  round {depth}: {ops}")
        return "\n".join(lines)


def _child_name(child: "PlanNode | Atom") -> str:
    return child.relation if isinstance(child, Atom) else child.name


class _Names:
    """Fresh view names V1, V2, ..."""

    def __init__(self) -> None:
        self._counter = itertools.count(1)

    def fresh(self) -> str:
        return f"V{next(self._counter)}"


def _group_chain(
    items: Sequence["PlanNode | Atom"], fanout: int, names: _Names
) -> "PlanNode | Atom":
    """Fold a sequence of chain pieces into a bushy ``fanout``-ary tree."""
    if fanout < 2:
        raise ValueError("fanout must be >= 2")
    level = list(items)
    while len(level) > 1:
        grouped: list[PlanNode | Atom] = []
        for start in range(0, len(level), fanout):
            group = tuple(level[start : start + fanout])
            if len(group) == 1:
                grouped.append(group[0])
            else:
                grouped.append(PlanNode(names.fresh(), group))
        level = grouped
    return level[0]


def chain_plan(k: int, eps: float = 0.0) -> Plan:
    """The bushy plan for ``L_k`` with ``k_eps``-way join operators.

    Depth ``ceil(log_{k_eps} k)``; each operator is (isomorphic to) a
    chain of length at most ``k_eps``, hence in ``Gamma^1_eps``.
    """
    query = chain_query(k)
    fanout = k_epsilon(eps)
    names = _Names()
    root = _group_chain(tuple(query.atoms), fanout, names)
    if isinstance(root, Atom):
        root = PlanNode(names.fresh(), (root,))
    return Plan(query, root)


def star_plan(k: int) -> Plan:
    """``T_k`` in a single round (tau* = 1)."""
    query = star_query(k)
    return Plan(query, PlanNode("V1", tuple(query.atoms)))


def spk_plan(k: int) -> Plan:
    """Example 5.3's two-round plan for ``SP_k`` at load ``O(M/p)``.

    Round 1 joins each pair ``R_i(z, x_i), S_i(x_i, y_i)``; round 2
    joins the ``k`` results on the shared ``z``.
    """
    query = spk_query(k)
    names = _Names()
    pairs = []
    for i in range(1, k + 1):
        pairs.append(
            PlanNode(
                names.fresh(),
                (query.atom(f"R{i}"), query.atom(f"S{i}")),
            )
        )
    root = PlanNode(names.fresh(), tuple(pairs))
    return Plan(query, root)


def cycle_plan(k: int, eps: float = 0.0) -> Plan:
    """Lemma 5.4's plan for ``C_k``: two arcs, then close the cycle.

    The cycle is split into two arcs of length ``ceil(k/2)`` and
    ``floor(k/2)``; each arc is a chain built with ``k_eps``-ary
    operators, and a final binary join closes the cycle (the arcs share
    both endpoints).  Depth ``ceil(log_{k_eps} ceil(k/2)) + 1``.
    """
    query = cycle_query(k)
    fanout = k_epsilon(eps)
    names = _Names()
    atoms = list(query.atoms)
    first_arc = tuple(atoms[: (k + 1) // 2])
    second_arc = tuple(atoms[(k + 1) // 2 :])
    left = _group_chain(first_arc, fanout, names)
    right = _group_chain(second_arc, fanout, names)
    root = PlanNode(names.fresh(), (left, right))
    return Plan(query, root)


def candidate_plans(
    query: ConjunctiveQuery,
    eps_values: Sequence[float] = (0.0, 0.5),
    fanouts: Sequence[int] = (2, 3),
) -> tuple[tuple[str, Plan], ...]:
    """Enumerate labelled candidate plans for ``query``.

    The pool the planner's multi-round strategy ranks over: the
    balanced bushy :func:`generic_plan` at each ``fanout``, plus --
    when the query is literally one of the paper's named families --
    the specialized builders (``k_eps``-ary chain trees at each ``eps``,
    the Lemma 5.4 cycle split, the two-round ``SP_k`` plan, the
    one-round star plan).  Matching is by exact atom set, the naming
    every :mod:`repro.core.families` constructor produces.
    """
    candidates: list[tuple[str, Plan]] = []
    atoms = set(query.atoms)
    ell = query.num_atoms
    if ell < 1:
        return ()
    if atoms == set(star_query(ell).atoms):
        candidates.append(("star", star_plan(ell)))
    if atoms == set(chain_query(ell).atoms):
        for eps in eps_values:
            candidates.append((f"chain(eps={eps:g})", chain_plan(ell, eps)))
    if ell >= 3 and atoms == set(cycle_query(ell).atoms):
        for eps in eps_values:
            candidates.append((f"cycle(eps={eps:g})", cycle_plan(ell, eps)))
    if ell % 2 == 0 and ell >= 2 and atoms == set(spk_query(ell // 2).atoms):
        candidates.append(("spk", spk_plan(ell // 2)))
    if query.is_connected:
        for fanout in fanouts:
            candidates.append((f"bushy(fanout={fanout})", generic_plan(query, fanout)))
    return tuple(candidates)


def generic_plan(
    query: ConjunctiveQuery, fanout: int = 2
) -> Plan:
    """A balanced bushy plan for any connected query.

    Groups atoms greedily into connected ``fanout``-size batches per
    level.  Not always round-optimal (Lemma 5.4's path decomposition
    can be better), but valid for every connected query and the natural
    baseline plan shape.
    """
    if not query.is_connected:
        raise ValueError("generic plans require a connected query")
    if fanout < 2:
        raise ValueError("fanout must be >= 2")
    names = _Names()
    level: list[PlanNode | Atom] = list(query.atoms)

    def shares_variable(a: "PlanNode | Atom", b: "PlanNode | Atom") -> bool:
        va = set(a.variables if isinstance(a, Atom) else a.schema)
        vb = set(b.variables if isinstance(b, Atom) else b.schema)
        return bool(va & vb)

    while len(level) > 1:
        grouped: list[PlanNode | Atom] = []
        remaining = list(level)
        while remaining:
            seedling = remaining.pop(0)
            group = [seedling]
            while len(group) < fanout and remaining:
                match = next(
                    (
                        c
                        for c in remaining
                        if any(shares_variable(c, g) for g in group)
                    ),
                    None,
                )
                if match is None:
                    break
                remaining.remove(match)
                group.append(match)
            if len(group) == 1:
                grouped.append(seedling)
            else:
                grouped.append(PlanNode(names.fresh(), tuple(group)))
        if len(grouped) == len(level):
            # No progress (disconnected level); force-join the first two.
            grouped = [
                PlanNode(names.fresh(), (level[0], level[1]))
            ] + level[2:]
        level = grouped
    root = level[0]
    if isinstance(root, Atom):
        root = PlanNode(names.fresh(), (root,))
    return Plan(query, root)
