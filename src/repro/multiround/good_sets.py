"""Epsilon-good sets and (eps, r)-plans (Definition 5.5, Lemmas 5.6/5.7).

The multi-round lower bound machinery revolves around choosing a set of
*surviving* atoms ``M`` and contracting everything else.  Following the
paper's proofs (the definition's text overloads ``M`` for both the set
and its complement; the proofs of Lemmas 5.6/5.7 fix the semantics):

* ``q -> q|M`` keeps the atoms of ``M`` and contracts the rest
  (so ``L_5 -> L_3`` by keeping every second atom, the paper's
  ``L5/{S2,S4}`` example);
* ``M`` is *eps-good* when (1) every connected subquery of the current
  query lying in ``Gamma^1_eps`` contains at most one atom of ``M``,
  and (2) the contracted-away complement has characteristic 0 (hence
  ``chi`` is preserved, Lemma 2.1);
* an ``(eps, r)``-plan is a strictly decreasing chain
  ``atoms(q) = M_0 > M_1 > ... > M_r`` of stage-wise eps-good sets with
  the final contracted query still outside ``Gamma^1_eps``.

Theorem 5.8 turns such a plan into a round lower bound: no tuple-based
MPC algorithm with load ``O(M/p^{1-eps})`` finishes in ``r + 1`` rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.families import chain_query, cycle_query
from repro.core.query import ConjunctiveQuery
from repro.multiround.gamma import in_gamma_1, k_epsilon, m_epsilon


def contract_to_survivors(
    query: ConjunctiveQuery, survivors: Iterable[str]
) -> ConjunctiveQuery:
    """Keep the ``survivors`` atoms, contract all the others."""
    keep = set(survivors)
    unknown = keep - set(query.relation_names)
    if unknown:
        raise KeyError(f"unknown relations {sorted(unknown)}")
    complement = [r for r in query.relation_names if r not in keep]
    return query.contract(complement)


def is_epsilon_good(
    query: ConjunctiveQuery, survivors: Iterable[str], eps: float
) -> bool:
    """Definition 5.5's two conditions for a survivor set ``M``.

    (1) every connected subquery of ``query`` in ``Gamma^1_eps`` has at
    most one atom in ``M``; (2) the complement has characteristic 0.
    ``M`` must be a non-empty strict subset of the atoms.
    """
    keep = set(survivors)
    names = set(query.relation_names)
    if not keep or keep == names or not keep <= names:
        return False
    complement = query.subquery(names - keep)
    if complement.characteristic != 0:
        return False
    for sub in query.connected_subqueries(min_atoms=2):
        hit = sum(1 for r in sub.relation_names if r in keep)
        if hit >= 2 and in_gamma_1(sub, eps):
            return False
    return True


@dataclass(frozen=True)
class EpsilonRPlan:
    """An ``(eps, r)``-plan: nested survivor sets ``M_1 > ... > M_r``."""

    query: ConjunctiveQuery
    eps: float
    survivor_sets: tuple[frozenset[str], ...]

    @property
    def r(self) -> int:
        return len(self.survivor_sets)

    @property
    def round_lower_bound(self) -> int:
        """Theorem 5.8: ``r + 1`` rounds fail, so at least ``r + 2`` are
        needed at load ``O(M/p^{1-eps})``."""
        return self.r + 2

    def stage_queries(self) -> tuple[ConjunctiveQuery, ...]:
        """``q|M_0 = q, q|M_1, ..., q|M_r``."""
        out = [self.query]
        for survivors in self.survivor_sets:
            out.append(contract_to_survivors(self.query, survivors))
        return tuple(out)


def validate_plan(plan: EpsilonRPlan) -> None:
    """Raise ``ValueError`` unless the plan satisfies Definition 5.5."""
    names = set(plan.query.relation_names)
    previous = frozenset(names)
    stage_query = plan.query
    for index, survivors in enumerate(plan.survivor_sets, 1):
        if not survivors < previous:
            raise ValueError(
                f"stage {index}: {sorted(survivors)} is not a strict subset "
                f"of {sorted(previous)}"
            )
        if not is_epsilon_good(stage_query, survivors, plan.eps):
            raise ValueError(
                f"stage {index}: {sorted(survivors)} is not eps-good"
            )
        stage_query = contract_to_survivors(plan.query, survivors)
        previous = survivors
    if in_gamma_1(stage_query, plan.eps):
        raise ValueError(
            "final contracted query is one-round computable; the plan "
            "certifies nothing"
        )


def _spaced(names: Sequence[str], gap: int, cyclic: bool) -> list[str]:
    """Every ``gap``-th name; cyclic selections keep the wrap-gap >= gap."""
    n = len(names)
    if cyclic:
        count = n // gap
    else:
        count = -(-n // gap)  # ceil
    return [names[t * gap] for t in range(count)]


def chain_epsilon_r_plan(k: int, eps: float = 0.0) -> EpsilonRPlan:
    """Lemma 5.6's plan for ``L_k``: keep every ``k_eps``-th atom per stage.

    Requires ``k > k_eps`` (otherwise ``L_k`` is one-round computable
    and admits no plan).  The resulting ``r`` is
    ``ceil(log_{k_eps} k) - 2``.
    """
    query = chain_query(k)
    return _iterated_plan(query, eps, cyclic=False)


def cycle_epsilon_r_plan(k: int, eps: float = 0.0) -> EpsilonRPlan:
    """Lemma 5.7's plan for ``C_k``: survivors ``k_eps`` apart on the cycle.

    Requires ``k > m_eps = floor(2/(1-eps))``.
    """
    query = cycle_query(k)
    if k <= m_epsilon(eps):
        raise ValueError(
            f"C{k} is one-round computable at eps={eps}; no plan exists"
        )
    return _iterated_plan(query, eps, cyclic=True)


def _iterated_plan(
    query: ConjunctiveQuery, eps: float, cyclic: bool
) -> EpsilonRPlan:
    if in_gamma_1(query, eps):
        raise ValueError(
            f"{query.name or 'query'} is one-round computable at eps={eps}; "
            "no (eps, r)-plan exists"
        )
    gap = k_epsilon(eps)
    current = list(query.relation_names)
    stages: list[frozenset[str]] = []
    while True:
        candidate = _spaced(current, gap, cyclic)
        if not candidate or len(candidate) >= len(current):
            break
        contracted = contract_to_survivors(query, candidate)
        if in_gamma_1(contracted, eps):
            break
        stages.append(frozenset(candidate))
        current = candidate
    return EpsilonRPlan(query, eps, tuple(stages))


def minimal_hard_subqueries(
    query: ConjunctiveQuery, eps: float
) -> tuple[ConjunctiveQuery, ...]:
    """``S_eps(q)``: minimal connected subqueries not in ``Gamma^1_eps``.

    Minimality is by atom-set inclusion; these are the operators whose
    one-round hardness drives the Theorem 5.11 constant ``beta(q, M)``.
    """
    hard: list[tuple[frozenset[str], ConjunctiveQuery]] = []
    for sub in query.connected_subqueries():
        if not in_gamma_1(sub, eps):
            hard.append((frozenset(sub.relation_names), sub))
    minimal = []
    for names, sub in hard:
        if not any(other < names for other, _ in hard):
            minimal.append(sub)
    return tuple(minimal)
