"""The classes ``Gamma^r_eps`` and round-count upper bounds (Section 5.1).

``Gamma^1_eps`` is the set of queries one-round computable at load
``O(M/p^{1-eps})``: those with ``tau*(q) <= 1/(1-eps)``.  ``Gamma^r_eps``
closes this under depth-``r`` view substitution.  Lemma 5.4 gives the
constructive upper bound on the rounds needed for any connected query:

.. math::
    r(q) = \\lceil \\log_{k_\\varepsilon}(rad(q)) \\rceil + 1
    \\ \\text{(tree-like)}, \\quad
    \\lfloor \\log_{k_\\varepsilon}(rad(q)) \\rfloor + 2
    \\ \\text{(otherwise)},

with ``k_eps = 2 * floor(1/(1-eps))`` the longest chain in
``Gamma^1_eps``.
"""

from __future__ import annotations

import math

from repro.core.packing import fractional_vertex_cover_number
from repro.core.query import ConjunctiveQuery


def k_epsilon(eps: float) -> int:
    """``k_eps = 2 * floor(1/(1-eps))``: longest chain in ``Gamma^1_eps``."""
    _check_eps(eps)
    return 2 * math.floor(1.0 / (1.0 - eps) + 1e-9)


def m_epsilon(eps: float) -> int:
    """``m_eps = floor(2/(1-eps))``: longest cycle base case (Lemma 5.7)."""
    _check_eps(eps)
    return math.floor(2.0 / (1.0 - eps) + 1e-9)


def in_gamma_1(query: ConjunctiveQuery, eps: float) -> bool:
    """Is ``q`` one-round computable at load ``O(M/p^{1-eps})``?

    Definition of ``Gamma^1_eps``: ``tau*(q) <= 1/(1-eps)``.
    """
    _check_eps(eps)
    return fractional_vertex_cover_number(query) <= 1.0 / (1.0 - eps) + 1e-9


def space_exponent_for_one_round(query: ConjunctiveQuery) -> float:
    """The smallest ``eps`` with ``q in Gamma^1_eps``: ``1 - 1/tau*``."""
    tau = fractional_vertex_cover_number(query)
    return max(0.0, 1.0 - 1.0 / tau)


def chain_rounds_upper_bound(k: int, eps: float) -> int:
    """Section 5.1's chain-specific bound ``ceil(log_{k_eps} k)``.

    The bushy ``k_eps``-ary plan computes ``L_k`` in exactly this many
    rounds (Example 5.2: two rounds for ``L_16`` at ``eps = 1/2``);
    tighter than Lemma 5.4's radius-based formula for ``k_eps > 2``.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    ke = k_epsilon(eps)
    if k <= ke:
        return 1
    return math.ceil(math.log(k, ke) - 1e-12)


def rounds_upper_bound(query: ConjunctiveQuery, eps: float) -> int:
    """Lemma 5.4's round count ``r(q)`` for a connected query.

    Queries already in ``Gamma^1_eps`` need exactly 1 round.
    """
    _check_eps(eps)
    if not query.is_connected:
        raise ValueError("Lemma 5.4 applies to connected queries")
    if in_gamma_1(query, eps):
        return 1
    k = k_epsilon(eps)
    radius = query.radius
    if query.is_tree_like:
        return max(1, math.ceil(math.log(radius, k))) + 1 if radius > 1 else 2
    return math.floor(math.log(max(radius, 1), k)) + 2


def _check_eps(eps: float) -> None:
    if not 0.0 <= eps < 1.0:
        raise ValueError("space exponent eps must be in [0, 1)")
