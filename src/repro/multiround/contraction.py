"""Instance-level contraction (the constructive half of Lemma 5.12).

The multi-round lower bound works by *contracting* matching database
instances: fix an eps-good survivor set ``M`` and an instance ``i_G``
of the contracted-away atoms ``G = atoms(q) \\ M``; then a variable
permutation ``m_sigma`` (built by walking the tree-like components of
``G``) maps ``i_G`` to identity matchings, and

.. math::  m_\\sigma(q(i)) = q(m_\\sigma(i)), \\qquad
           q|M(i_M) = m_\\sigma^{-1}(\\Pi_{vars(q|M)}(q(m_\\sigma(i_M), id_G)))

so an algorithm for ``q`` yields one for the contracted query ``q|M``
on one fewer effective round.  This module implements the construction
executably: :func:`contraction_permutation` builds ``m_sigma`` from a
matching instance of ``G``, and :func:`contract_instance` produces the
contracted query together with the instance on which it must be
evaluated.  Property tests verify the displayed identities -- the paper
machinery, run on real data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.query import ConjunctiveQuery
from repro.data.database import Database
from repro.data.relation import Relation
from repro.join.multiway import evaluate, evaluate_on_fragments
from repro.multiround.good_sets import contract_to_survivors


@dataclass(frozen=True)
class ContractionMap:
    """Per-variable value permutations ``sigma_x`` (Lemma 5.12's m_sigma).

    ``sigma[x][a]`` rewrites value ``a`` of variable ``x``.  Variables
    untouched by the contracted component keep the identity (values
    absent from the map are fixed points).
    """

    sigma: dict[str, dict[int, int]]

    def apply_value(self, variable: str, value: int) -> int:
        return self.sigma.get(variable, {}).get(value, value)

    def apply_tuple(
        self, variables: Iterable[str], values: Iterable[int]
    ) -> tuple[int, ...]:
        return tuple(
            self.apply_value(v, a) for v, a in zip(variables, values)
        )

    def apply_answers(
        self, query: ConjunctiveQuery, answers: Iterable[tuple[int, ...]]
    ) -> set[tuple[int, ...]]:
        head = query.variables
        return {self.apply_tuple(head, t) for t in answers}


def contraction_permutation(
    query: ConjunctiveQuery,
    database: Database,
    contracted: Iterable[str],
) -> ContractionMap:
    """Build ``m_sigma`` for the contracted atoms ``G``.

    Each connected component ``q_c`` of ``G`` is tree-like (chi = 0),
    so its instance joins to a matching ``q_c(i_G)``; choosing the
    representative variable ``z_c`` (the contraction representative),
    every variable ``x`` of the component gets
    ``sigma_x(a_x) = a_{z_c}`` along each join tuple.  Values not
    participating in any join tuple stay fixed.
    """
    g_names = list(contracted)
    g_query = query.subquery(g_names)
    if g_query.characteristic != 0:
        raise ValueError("contracted atoms must have characteristic 0")
    sigma: dict[str, dict[int, int]] = {}
    for component in g_query.connected_components():
        if component.num_atoms == 0:
            continue
        fragments = {
            a.relation: database[a.relation].tuples for a in component.atoms
        }
        join = evaluate_on_fragments(component, fragments)
        head = component.variables
        representative = head[0]
        rep_index = head.index(representative)
        for t in join:
            target = t[rep_index]
            for variable, value in zip(head, t):
                sigma.setdefault(variable, {})[value] = target
    return ContractionMap(sigma)


def apply_permutation(
    query: ConjunctiveQuery, database: Database, mapping: ContractionMap
) -> Database:
    """``m_sigma(i)``: rewrite every relation through the permutation."""
    relations = []
    for atom in query.atoms:
        rel = database[atom.relation]
        tuples = {
            mapping.apply_tuple(atom.variables, t) for t in rel
        }
        relations.append(Relation(atom.relation, atom.arity, tuples))
    return Database(relations, database.domain_size)


def contract_instance(
    query: ConjunctiveQuery,
    database: Database,
    survivors: Iterable[str],
) -> tuple[ConjunctiveQuery, Database, ContractionMap]:
    """The contracted query ``q|M`` with its induced instance.

    Returns ``(q|M, i_M', m_sigma)`` where ``i_M'`` holds the surviving
    relations rewritten through ``m_sigma``; evaluating ``q|M`` on it
    gives exactly ``m_sigma`` applied to the projection of ``q(i)``
    (Lemma 5.12's contraction identity, checked in the tests).
    """
    keep = set(survivors)
    complement = [r for r in query.relation_names if r not in keep]
    mapping = contraction_permutation(query, database, complement)
    contracted_query = contract_to_survivors(query, keep)
    relations = []
    for atom in contracted_query.atoms:
        original = query.atom(atom.relation)
        rel = database[atom.relation]
        tuples = {
            mapping.apply_tuple(original.variables, t) for t in rel
        }
        relations.append(Relation(atom.relation, atom.arity, tuples))
    return (
        contracted_query,
        Database(relations, database.domain_size),
        mapping,
    )


def contraction_identity_holds(
    query: ConjunctiveQuery,
    database: Database,
    survivors: Iterable[str],
) -> bool:
    """Check ``q|M(i') == Pi_{vars(q|M)}(m_sigma(q(i)))`` on an instance.

    The executable form of Lemma 5.12's contraction step; used by the
    property tests and the multi-round lower-bound bench.
    """
    keep = set(survivors)
    contracted_query, contracted_db, mapping = contract_instance(
        query, database, keep
    )
    left = evaluate(contracted_query, contracted_db)

    answers = evaluate(query, database)
    mapped = mapping.apply_answers(query, answers)
    head = query.variables
    positions = [head.index(v) for v in contracted_query.variables]
    right = {tuple(t[i] for i in positions) for t in mapped}
    return left == right
