"""repro -- Communication Cost in Parallel Query Processing, reproduced.

A faithful, executable reproduction of Beame, Koutris, Suciu,
*Communication Cost in Parallel Query Processing* (EDBT 2015 / arXiv
1602.06236): the Massively Parallel Communication (MPC) model, the
HyperCube algorithm with LP-optimal shares, skew-aware star/triangle
algorithms, multi-round query plans, and every load / round / replication
bound the paper proves.

Quickstart -- configure the cluster once, run anything on it::

    from repro import Session, triangle_query, matching_database
    from repro.join import evaluate

    q = triangle_query()
    db = matching_database(q, m=1000, n=10_000, seed=0)
    with Session(p=64, seed=0) as session:
        result = session.run(q, db)          # planner picks the strategy
        assert result.answers == evaluate(q, db)
        print(result.strategy, result.rounds, result.load_report.max_load_bits)
        print(session.plan(q, db).table())   # EXPLAIN: ranked predictions

A :class:`~repro.session.Session` wraps the paper's fixed machine
configuration (:class:`~repro.session.ClusterConfig`: ``p`` servers,
backend, seed, per-server capacity ``L``, memory budget) and exposes
one verb: ``session.run(query, db)`` routes through the cost-based
planner, ``session.run(query, db, strategy="skew-star")`` pins a named
algorithm, ``session.run_many([...])`` executes a batch of independent
jobs concurrently over shared storage, and ``session.history``
accumulates per-run load records for workload-level reporting.  Every
result -- whichever executor produced it -- satisfies the
:class:`~repro.session.RunResult` protocol (``answers``,
``answers_array()``, ``load_report``, ``rounds``, ``strategy``,
``predicted_bits``).

Package map (see DESIGN.md for the paper-section correspondence):

* :mod:`repro.core` -- queries, packings/covers, share LPs, Friedgut/AGM
* :mod:`repro.data` -- relations and synthetic data generators
* :mod:`repro.hashing` -- PRF hash families, balls-in-bins (Appendix A)
* :mod:`repro.mpc` -- the round-based simulator with bit-level loads
* :mod:`repro.join` -- generic multiway join (local computation phases)
* :mod:`repro.hypercube` -- the one-round HyperCube algorithm + baselines
* :mod:`repro.skew` -- heavy hitters, star/triangle algorithms, Thm 4.4
* :mod:`repro.multiround` -- plans, (eps, r)-plans, connected components
* :mod:`repro.bounds` -- one-round lower bounds, replication, entropy
* :mod:`repro.planner` -- cost-based strategy selection (`plan`/`execute`)
* :mod:`repro.storage` -- out-of-core chunked relations + spill files
* :mod:`repro.session` -- `Session`/`ClusterConfig`, the unified front
  door and the shared run path behind every executor
* :mod:`repro.trace` -- per-event communication traces (JSONL
  artifacts, `TraceQuery` analysis, `python -m repro trace`)
* :mod:`repro.metrics` -- live workload telemetry (counters / gauges /
  histograms, prediction-calibration tracking, `python -m repro
  metrics`)

The low-level layer stays available: the free functions
``run_hypercube`` / ``run_star_skew`` / ``run_triangle_skew`` /
``run_plan`` and ``planner.execute`` take the same knobs per call and
are thin wrappers over the session's shared run path (bit-identical
results either way).

Every executor and generator runs the columnar (``"numpy"``) engine by
default; the tuple-at-a-time reference path is one switch away::

    import repro
    repro.set_default_backend("tuples")   # system-wide ground-truth mode
    with repro.use_backend("tuples"):     # scoped, exception-safe form
        ...

When the data outgrows RAM, attach a storage manager and everything
streams through disk-backed chunks with bit-identical results::

    from repro.storage import StorageManager
    with StorageManager.from_budget(2 * 1024**3) as storage:
        db = matching_database(q, m=10**8, n=4 * 10**8, storage=storage)
        result = run_hypercube(q, db, p=64, storage=storage)

To spread the simulated servers' routing and local joins across real
cores, pick a worker pool -- per run, per session, or system-wide.
Every pool kind produces bit-identical answers and loads::

    result = run_hypercube(q, db, p=64, pool="process")  # one run
    with Session(p=64, pool="process") as session: ...   # one cluster
    repro.set_default_pool("process")                    # system-wide
    # or: REPRO_DEFAULT_POOL=process python -m repro run triangle

To see *where* the communication went -- not just the end-of-run
aggregates -- trace a run.  Tracing is off by default, never perturbs
results, and writes compact JSONL artifacts::

    from repro import Session, TraceQuery
    with Session(p=64, seed=0, trace="traces/") as session:
        record = session.run(q, db)
    print(TraceQuery(session.history[0].trace_path).top_servers(k=5))
    # or offline: python -m repro trace traces/

For *live* aggregates instead of event streams -- how many bits a
workload shipped, run latency histograms, how well the cost model
predicted each strategy -- turn on metrics (also never perturbs
results)::

    from repro import Session, global_metrics, render_text
    with Session(p=64, seed=0, metrics=True) as session:
        session.run_many(jobs, metrics_every=10)   # progress lines
        print(session.metrics.calibration.stats()) # measured/predicted
    print(render_text(global_metrics().snapshot()))
    # or scoped: with repro.collecting() as reg: ...
"""

import logging as _logging

from repro.config import (
    MachineSpec,
    default_backend,
    default_machines,
    default_pool,
    set_default_backend,
    set_default_machines,
    set_default_pool,
    use_backend,
    use_machines,
    use_pool,
)
from repro.core import (
    Atom,
    ConjunctiveQuery,
    Statistics,
    binom_query,
    chain_query,
    cycle_query,
    k4_query,
    simple_join_query,
    spk_query,
    star_query,
    triangle_query,
)
from repro.data import (
    Database,
    Relation,
    matching_database,
    uniform_database,
    zipf_database,
)
from repro.hypercube import run_hypercube
from repro.metrics import (
    CalibrationTracker,
    MetricsRegistry,
    collecting,
    global_metrics,
    render_text,
)
from repro.mpc import MPCSimulation
from repro.bounds import lower_bound, upper_bound
from repro.planner import DataStatistics, ExplainedPlan, PlannedExecution
from repro.planner import execute as execute_query
from repro.planner import plan as plan_query
from repro.session import (
    ClusterConfig,
    Job,
    RunRecord,
    RunResult,
    Session,
)
from repro.storage import ChunkedRelation, StorageManager
from repro.trace import Trace, TraceQuery, TraceRecorder, tracing

# Library logging convention: everything logs under the "repro"
# namespace and the root handler is a NullHandler, so the library is
# silent unless the application configures logging.  The few warnings
# (silent-fallback sites: a forced-serial pool, a legacy estimate()
# signature, nested process fan-out) surface with plain
# ``logging.basicConfig()``.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

__version__ = "1.9.0"

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "Statistics",
    "binom_query",
    "chain_query",
    "cycle_query",
    "k4_query",
    "simple_join_query",
    "spk_query",
    "star_query",
    "triangle_query",
    "Database",
    "Relation",
    "matching_database",
    "uniform_database",
    "zipf_database",
    "run_hypercube",
    "ClusterConfig",
    "Job",
    "RunRecord",
    "RunResult",
    "Session",
    "default_backend",
    "set_default_backend",
    "use_backend",
    "default_pool",
    "set_default_pool",
    "use_pool",
    "MachineSpec",
    "default_machines",
    "set_default_machines",
    "use_machines",
    "ChunkedRelation",
    "StorageManager",
    "MPCSimulation",
    "Trace",
    "TraceQuery",
    "TraceRecorder",
    "tracing",
    "CalibrationTracker",
    "MetricsRegistry",
    "collecting",
    "global_metrics",
    "render_text",
    "lower_bound",
    "upper_bound",
    "DataStatistics",
    "ExplainedPlan",
    "PlannedExecution",
    "execute_query",
    "plan_query",
    "__version__",
]
