"""Prediction-calibration tracking: measured vs predicted load, per strategy.

The planner attaches its cost-model prediction to every executed run
(:meth:`~repro.mpc.report.LoadReport.prediction_ratio` = measured L /
predicted L); a :class:`CalibrationTracker` folds that stream of
ratios into per-strategy running error statistics -- count, mean,
variance (Welford), min/max, last -- without retaining the runs.  A
ratio near 1.0 means the cost model prices the strategy well; a drift
away from it is the signal the ROADMAP's adaptive-planning loop
recalibrates from.

Merging uses the parallel Welford update (Chan et al.), so worker
deltas and per-run trackers combine into exactly the statistics one
sequential tracker would have produced, up to float associativity.
"""

from __future__ import annotations

import math
import threading
from typing import Mapping


class CalibrationTracker:
    """Running measured/predicted ratio statistics, keyed by strategy."""

    __slots__ = ("_lock", "_stats")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # strategy -> [count, mean, m2, min, max, last]
        self._stats: dict[str, list[float]] = {}

    def observe(self, strategy: str, ratio: float) -> None:
        """Fold one run's measured/predicted ratio in."""
        ratio = float(ratio)
        with self._lock:
            row = self._stats.get(strategy)
            if row is None:
                self._stats[strategy] = [1, ratio, 0.0, ratio, ratio, ratio]
                return
            row[0] += 1
            delta = ratio - row[1]
            row[1] += delta / row[0]
            row[2] += delta * (ratio - row[1])
            row[3] = min(row[3], ratio)
            row[4] = max(row[4], ratio)
            row[5] = ratio

    def stats(self) -> dict[str, dict[str, float]]:
        """Human-facing view: ``{strategy: {count, mean, stddev, ...}}``."""
        out = {}
        for strategy, row in sorted(self.snapshot().items()):
            count = row["count"]
            out[strategy] = {
                "count": count,
                "mean": row["mean"],
                "stddev": (
                    math.sqrt(row["m2"] / (count - 1)) if count > 1 else 0.0
                ),
                "min": row["min"],
                "max": row["max"],
                "last": row["last"],
            }
        return out

    # ------------------------------------------------------ snapshot / merge

    def snapshot(self) -> dict[str, dict[str, float]]:
        """The mergeable raw form (keeps ``m2``, not the derived stddev)."""
        with self._lock:
            return {
                strategy: {
                    "count": row[0],
                    "mean": row[1],
                    "m2": row[2],
                    "min": row[3],
                    "max": row[4],
                    "last": row[5],
                }
                for strategy, row in self._stats.items()
            }

    def merge(self, snapshot: Mapping[str, Mapping[str, float]]) -> None:
        """Fold another tracker's :meth:`snapshot` in (parallel Welford)."""
        for strategy, other in snapshot.items():
            nb = int(other.get("count", 0))
            if nb == 0:
                continue
            with self._lock:
                row = self._stats.get(strategy)
                if row is None:
                    self._stats[strategy] = [
                        nb, float(other["mean"]), float(other.get("m2", 0.0)),
                        float(other["min"]), float(other["max"]),
                        float(other["last"]),
                    ]
                    continue
                na, mean_a, m2_a = row[0], row[1], row[2]
                n = na + nb
                delta = float(other["mean"]) - mean_a
                row[0] = n
                row[1] = mean_a + delta * nb / n
                row[2] = (
                    m2_a + float(other.get("m2", 0.0))
                    + delta * delta * na * nb / n
                )
                row[3] = min(row[3], float(other["min"]))
                row[4] = max(row[4], float(other["max"]))
                row[5] = float(other["last"])

    def __len__(self) -> int:
        with self._lock:
            return len(self._stats)

    def __repr__(self) -> str:
        return f"CalibrationTracker({len(self)} strategies)"
