"""``repro.metrics`` -- live workload telemetry over the trace seams.

Where :mod:`repro.trace` records *events* for post-hoc analysis, this
package keeps *aggregates* live: counters, gauges and fixed-bucket
histograms in a :class:`MetricsRegistry`, updated by the same
instrumented seams (simulator deliveries, storage spill I/O, the
worker-pool drivers, the shared run dispatch) plus a
:class:`CalibrationTracker` folding every planner-predicted run's
measured/predicted load ratio into per-strategy error statistics.

Metrics are **off by default** and activated per scope, either
directly::

    from repro.metrics import collecting

    with collecting() as reg:
        result = run_hypercube(q, db, p=64)
    assert reg.value("repro_sim_bits_total") == \\
        result.load_report.total_bits      # exact, float ==

or through the session front door, which keeps one aggregated view per
session and rolls it up into the process-wide registry::

    with Session(p=64, seed=0, metrics=True) as session:
        session.run_many(jobs, metrics_every=10)   # progress lines
        print(session.metrics.calibration.stats())
    from repro.metrics import global_metrics, render_text
    print(render_text(global_metrics().snapshot()))

Enabling metrics never perturbs results: every engine stays
bit-identical (answers, per-server per-round bits, capacity drops) at
any pool kind x worker count x storage on/off, the hooks read no wall
clock on identity-sensitive paths, and the per-run counter totals
reconcile exactly (float ``==``) with the run's ``LoadReport``.
Process-pool ``run_many`` workers count into their own registry and
ship the snapshot back through the pickled-result path; the parent
merges it, so the session view is pool-kind-independent.

Metric schema (all ``bits`` in the model's load unit; labels in
braces)
----------------------------------------------------------------------

``repro_sim_simulations_total`` (counter)
    ``MPCSimulation`` constructions inside a collecting scope.
``repro_sim_sends_total`` / ``repro_sim_bits_total`` /
``repro_sim_tuples_total`` / ``repro_sim_dropped_bits_total`` (counters)
    Per-delivery accounting: deliveries, accepted bits (sums to
    ``LoadReport.total_bits`` per run), accepted tuples, and
    capacity-dropped bits (sums to ``LoadReport.dropped_bits``).
``repro_sim_rounds_total`` (counter), ``repro_sim_round_max_bits`` (gauge)
    Rounds closed; the last round's max per-server bits (the gauge's
    ``max`` is the worst round seen).
``repro_spill_bytes_written_total`` / ``repro_spill_writes_total`` /
``repro_spill_bytes_read_total`` / ``repro_spill_reads_total`` (counters)
    Storage-manager spill I/O, mirroring the trace ``spill`` events
    (real file bytes, not model bits).
``repro_pool_tasks_total{kind}`` (counter),
``repro_pool_task_seconds{kind}`` (histogram)
    Worker-pool route/join tasks merged by the drivers; seconds are
    the task body's own wall time measured inside the worker.
``repro_pool_queue_depth{kind}`` (gauge)
    In-flight tasks in a thread/process pool's bounded prefetch
    window; ``max`` is the high watermark.
``repro_runs_total{strategy}`` (counter),
``repro_run_seconds{strategy}`` / ``repro_run_rounds{strategy}`` /
``repro_run_load_bits{strategy}`` (histograms),
``repro_run_makespan_bits{strategy}`` (gauge)
    Per-dispatch run telemetry from the shared run path: run count,
    wall latency (throughput = ``count / sum``), rounds, max per-server
    load, and -- on heterogeneous clusters -- the speed-normalized
    makespan.
``repro_calibration_ratio{strategy,stat}`` /
``repro_calibration_runs_total{strategy}`` (rendered from the tracker)
    Measured/predicted ratio statistics (mean/min/max/last and the
    run count) per strategy.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON with
``schema: "repro.metrics/1"``; :func:`render_text` produces
Prometheus-style exposition, :func:`write_snapshot` /
:func:`load_snapshot` persist them, :func:`diff_snapshots` subtracts
two, and the ``python -m repro metrics`` CLI does all three offline.
"""

from repro.metrics.calibration import CalibrationTracker
from repro.metrics.exposition import (
    diff_snapshots,
    load_snapshot,
    render_diff,
    render_text,
    write_snapshot,
)
from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_metrics,
    collecting,
    global_metrics,
)

__all__ = [
    "CalibrationTracker",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_metrics",
    "collecting",
    "diff_snapshots",
    "global_metrics",
    "load_snapshot",
    "render_diff",
    "render_text",
    "write_snapshot",
]
