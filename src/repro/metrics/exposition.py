"""Rendering and diffing of metrics snapshots.

Two formats over one :meth:`MetricsRegistry.snapshot` dict:

* :func:`render_text` -- Prometheus-style exposition (``# HELP`` /
  ``# TYPE`` headers, ``name{label="v"} value`` samples, cumulative
  ``_bucket{le=...}`` / ``_sum`` / ``_count`` histogram series) plus
  the calibration tracker as per-strategy gauge samples.  Line format
  only; nothing here serves HTTP.
* :func:`write_snapshot` / :func:`load_snapshot` -- the JSON artifact
  the CLI renders and diffs offline.

:func:`diff_snapshots` subtracts one snapshot from another series by
series (counters and histogram counts/sums subtract, gauges pair up as
``before -> after``), which is how ``python -m repro metrics A --diff
B`` turns two workload snapshots into "what happened in between".
"""

from __future__ import annotations

import json
import pathlib
from typing import Mapping

#: One-line help per metric family (rendered as ``# HELP``).
HELP: dict[str, str] = {
    "repro_sim_simulations_total": "MPC simulations constructed.",
    "repro_sim_sends_total": "Simulator deliveries accounted.",
    "repro_sim_bits_total":
        "Accepted bits across deliveries (the model's load unit).",
    "repro_sim_tuples_total": "Accepted tuples across deliveries.",
    "repro_sim_dropped_bits_total": "Capacity-dropped bits.",
    "repro_sim_rounds_total": "Communication rounds closed.",
    "repro_sim_round_max_bits":
        "Last closed round's max per-server bits (gauge; max = worst round).",
    "repro_spill_bytes_written_total": "Bytes written to spill chunks.",
    "repro_spill_writes_total": "Spill-chunk writes.",
    "repro_spill_bytes_read_total": "Bytes read back from spill chunks.",
    "repro_spill_reads_total": "Spill-chunk reads.",
    "repro_pool_tasks_total": "Worker-pool tasks completed, by kind.",
    "repro_pool_task_seconds":
        "Task-body wall time measured inside the worker, by kind.",
    "repro_pool_queue_depth":
        "In-flight tasks in the pool's prefetch window (gauge; max = "
        "high watermark).",
    "repro_runs_total": "Executor runs dispatched, by strategy.",
    "repro_run_seconds":
        "Run wall latency by strategy (throughput = count / sum).",
    "repro_run_rounds": "Rounds per run, by strategy.",
    "repro_run_load_bits": "Per-run max per-server load L, by strategy.",
    "repro_run_makespan_bits":
        "Speed-normalized makespan of the last heterogeneous run (gauge).",
    "repro_calibration_ratio":
        "Measured/predicted load ratio statistics, by strategy.",
    "repro_calibration_runs_total": "Runs folded into calibration.",
}


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_text(snapshot: Mapping) -> str:
    """Prometheus-style text exposition of one snapshot."""
    by_name: dict[str, list[dict]] = {}
    for row in snapshot.get("metrics", ()):
        by_name.setdefault(row["name"], []).append(row)
    lines: list[str] = []
    for name in sorted(by_name):
        rows = by_name[name]
        kind = rows[0]["type"]
        if name in HELP:
            lines.append(f"# HELP {name} {HELP[name]}")
        lines.append(f"# TYPE {name} {kind}")
        for row in rows:
            labels = row.get("labels", {})
            if kind == "histogram":
                cumulative = 0
                edges = list(row["edges"]) + ["+Inf"]
                for edge, bucket in zip(edges, row["counts"]):
                    cumulative += bucket
                    le = edge if edge == "+Inf" else _format_value(edge)
                    le_label = 'le="%s"' % le
                    lines.append(
                        f"{name}_bucket{_labels_text(labels, le_label)} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_labels_text(labels)} "
                    f"{_format_value(row['sum'])}"
                )
                lines.append(
                    f"{name}_count{_labels_text(labels)} {row['count']}"
                )
            else:
                lines.append(
                    f"{name}{_labels_text(labels)} "
                    f"{_format_value(row['value'])}"
                )
                if kind == "gauge" and row.get("max", 0.0) != row["value"]:
                    lines.append(
                        f"{name}_max{_labels_text(labels)} "
                        f"{_format_value(row['max'])}"
                    )
    calibration = snapshot.get("calibration", {})
    if calibration:
        name = "repro_calibration_ratio"
        lines.append(f"# HELP {name} {HELP[name]}")
        lines.append(f"# TYPE {name} gauge")
        for strategy in sorted(calibration):
            row = calibration[strategy]
            count = int(row.get("count", 0))
            for stat in ("mean", "min", "max", "last"):
                labels = {"strategy": strategy, "stat": stat}
                lines.append(
                    f"{name}{_labels_text(labels)} "
                    f"{_format_value(float(row[stat]))}"
                )
            lines.append(
                "repro_calibration_runs_total"
                f"{_labels_text({'strategy': strategy})} {count}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


# ------------------------------------------------------------- persistence


def write_snapshot(
    snapshot: Mapping, path: str | pathlib.Path
) -> pathlib.Path:
    """Write one snapshot as an indented JSON artifact; returns the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return path


def load_snapshot(path: str | pathlib.Path) -> dict:
    """Load a snapshot written by :func:`write_snapshot`."""
    snapshot = json.loads(pathlib.Path(path).read_text())
    if snapshot.get("schema") != "repro.metrics/1":
        raise ValueError(
            f"{path}: not a repro.metrics snapshot "
            f"(schema={snapshot.get('schema')!r})"
        )
    return snapshot


# ------------------------------------------------------------------- diffs


def _series_key(row: Mapping) -> tuple:
    return (row["name"], tuple(sorted(row.get("labels", {}).items())))


def diff_snapshots(before: Mapping, after: Mapping) -> list[dict]:
    """Per-series deltas from ``before`` to ``after``.

    Counters and histograms report the increment (series absent on one
    side count as zero); gauges report both readings.  Series that did
    not change are omitted, so a diff over a quiet interval is empty.
    """
    old = {_series_key(r): r for r in before.get("metrics", ())}
    rows = []
    seen = set()
    for row in after.get("metrics", ()):
        key = _series_key(row)
        seen.add(key)
        prior = old.get(key)
        kind = row["type"]
        entry = {
            "name": row["name"],
            "labels": dict(row.get("labels", {})),
            "type": kind,
        }
        if kind == "counter":
            delta = row["value"] - (prior["value"] if prior else 0.0)
            if delta == 0.0:
                continue
            entry["delta"] = delta
        elif kind == "gauge":
            entry["before"] = prior["value"] if prior else None
            entry["after"] = row["value"]
            if entry["before"] == entry["after"]:
                continue
        else:
            entry["delta_count"] = row["count"] - (
                prior["count"] if prior else 0
            )
            entry["delta_sum"] = row["sum"] - (prior["sum"] if prior else 0.0)
            if entry["delta_count"] == 0 and entry["delta_sum"] == 0.0:
                continue
        rows.append(entry)
    for key, prior in old.items():
        if key not in seen:
            rows.append({
                "name": prior["name"],
                "labels": dict(prior.get("labels", {})),
                "type": prior["type"],
                "removed": True,
            })
    rows.sort(key=lambda r: (r["name"], sorted(r["labels"].items())))
    return rows


def render_diff(before: Mapping, after: Mapping) -> str:
    """One line per changed series, ``A -> B`` style."""
    rows = diff_snapshots(before, after)
    if not rows:
        return "no change between snapshots\n"
    lines = []
    for row in rows:
        label = row["name"] + _labels_text(row["labels"])
        if row.get("removed"):
            lines.append(f"{label}: removed")
        elif row["type"] == "counter":
            lines.append(f"{label}: +{_format_value(row['delta'])}")
        elif row["type"] == "gauge":
            before_text = (
                _format_value(row["before"])
                if row["before"] is not None
                else "-"
            )
            lines.append(
                f"{label}: {before_text} -> {_format_value(row['after'])}"
            )
        else:
            lines.append(
                f"{label}: +{row['delta_count']} observation(s), "
                f"sum +{_format_value(row['delta_sum'])}"
            )
    return "\n".join(lines) + "\n"
