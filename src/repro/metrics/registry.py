"""The instrument registry behind :mod:`repro.metrics`.

A :class:`MetricsRegistry` holds named, optionally labeled instruments
-- :class:`Counter`, :class:`Gauge`, :class:`Histogram` -- behind one
lock-per-instrument design: looking an instrument up takes the
registry lock once, updating it takes only its own lock, so the hot
delivery paths bind their counters once per simulation and pay a
single guarded float add per event.

Activation mirrors :mod:`repro.trace.recorder` exactly: a
:mod:`contextvars` context variable scopes the active registry
(:func:`collecting` installs one, :func:`active_metrics` reads it), so
no executor signature changes and a disabled hook is one ``None``
check.  Histogram bucket edges are fixed per metric family
(:data:`SECONDS_EDGES`, :data:`BITS_EDGES`, ...) -- deterministic, so
two runs of the same workload fill the same buckets -- and none of the
counting hooks reads a wall clock; time observations come from places
that already measure time for reporting (task bodies, run dispatch).

Aggregation is snapshot-and-merge: :meth:`MetricsRegistry.snapshot`
produces a plain-JSON dict and :meth:`MetricsRegistry.merge` folds one
in (counters add, gauges keep the newer value and the running max,
histograms add bucket counts, calibration merges via parallel
Welford).  That is how per-run registries roll up into a session's
view, session views into the process-wide :func:`global_metrics`
registry, and process-pool worker deltas across the pickled-result
path back into the parent.
"""

from __future__ import annotations

import bisect
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Mapping, Sequence

from repro.metrics.calibration import CalibrationTracker

#: Deterministic bucket edges (upper bounds) by metric-name suffix.
#: Seconds: a decade ladder from 100 microseconds to a minute.
SECONDS_EDGES: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)
#: Bits/bytes: powers of four from 1 KiB to 1 GiB -- load doublings
#: land two buckets apart.
BITS_EDGES: tuple[float, ...] = tuple(float(4**k) for k in range(5, 16))
#: Round counts: the multi-round executors top out well under 16.
ROUNDS_EDGES: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0)
#: Fallback: powers of ten.
DEFAULT_EDGES: tuple[float, ...] = tuple(float(10**k) for k in range(0, 9))


def default_edges(name: str) -> tuple[float, ...]:
    """The fixed bucket edges a metric name implies."""
    if name.endswith("_seconds"):
        return SECONDS_EDGES
    if name.endswith(("_bits", "_bytes")):
        return BITS_EDGES
    if name.endswith("_rounds"):
        return ROUNDS_EDGES
    return DEFAULT_EDGES


class Counter:
    """A monotonically increasing float (bits shipped, tasks run, ...)."""

    __slots__ = ("_lock", "value")

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount

    def _sample(self) -> dict:
        with self._lock:
            return {"value": self.value}

    def _merge(self, sample: Mapping) -> None:
        with self._lock:
            self.value += float(sample.get("value", 0.0))


class Gauge:
    """A last-write-wins level (queue depth, last round's max load).

    Tracks the running maximum alongside the current value -- the high
    watermark is usually the interesting number for depths and loads.
    """

    __slots__ = ("_lock", "value", "max")

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0
        self.max = 0.0

    def set(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.value = value
            if value > self.max:
                self.max = value

    def _sample(self) -> dict:
        with self._lock:
            return {"value": self.value, "max": self.max}

    def _merge(self, sample: Mapping) -> None:
        with self._lock:
            self.value = float(sample.get("value", 0.0))
            self.max = max(self.max, float(sample.get("max", 0.0)))


class Histogram:
    """Fixed-bucket distribution: cumulative-style exposition, exact sum.

    ``edges`` are finite upper bounds; one implicit overflow bucket
    catches everything beyond the last edge, so ``sum(counts) ==
    count`` always holds.
    """

    __slots__ = ("_lock", "edges", "counts", "sum", "count")

    kind = "histogram"

    def __init__(self, edges: Sequence[float]) -> None:
        edges = tuple(float(e) for e in edges)
        if not edges or list(edges) != sorted(set(edges)):
            raise ValueError("histogram edges must be sorted and distinct")
        self._lock = threading.Lock()
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.edges, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def percentile(self, q: float) -> float:
        """The upper edge of the bucket holding the ``q``-th percentile.

        A bucketed estimate (exact values are not retained); the
        overflow bucket reports the last finite edge.
        """
        with self._lock:
            total = self.count
            counts = list(self.counts)
        if total == 0:
            return 0.0
        rank = max(1, int(round(q / 100.0 * total)))
        seen = 0
        for index, bucket in enumerate(counts):
            seen += bucket
            if seen >= rank:
                return self.edges[min(index, len(self.edges) - 1)]
        return self.edges[-1]

    def _sample(self) -> dict:
        with self._lock:
            return {
                "edges": list(self.edges),
                "counts": list(self.counts),
                "sum": self.sum,
                "count": self.count,
            }

    def _merge(self, sample: Mapping) -> None:
        if tuple(sample.get("edges", ())) != self.edges:
            raise ValueError(
                "cannot merge histograms with different bucket edges"
            )
        with self._lock:
            for index, bucket in enumerate(sample.get("counts", ())):
                self.counts[index] += int(bucket)
            self.sum += float(sample.get("sum", 0.0))
            self.count += int(sample.get("count", 0))


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named counters/gauges/histograms plus a calibration tracker.

    See :mod:`repro.metrics` for the metric-name schema.  Instruments
    are created on first use and identified by ``(name, labels)``; a
    name is permanently bound to one instrument kind (and, for
    histograms, one edge tuple), so snapshots from different processes
    always merge cleanly.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._series: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}
        self.calibration = CalibrationTracker()

    # ----------------------------------------------------------- instruments

    def _instrument(self, kind: str, name: str, labels: dict, edges=None):
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        with self._lock:
            instrument = self._series.get(key)
            if instrument is None:
                if kind == "histogram":
                    instrument = Histogram(
                        edges if edges is not None else default_edges(name)
                    )
                else:
                    instrument = _KINDS[kind]()
                self._series[key] = instrument
            elif instrument.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {instrument.kind}, not a {kind}"
                )
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._instrument("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._instrument("gauge", name, labels)

    def histogram(
        self, name: str, edges: Sequence[float] | None = None, **labels
    ) -> Histogram:
        return self._instrument("histogram", name, labels, edges=edges)

    def value(self, name: str, **labels) -> float:
        """A counter/gauge's current value (0.0 when never touched)."""
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        with self._lock:
            instrument = self._series.get(key)
        if instrument is None:
            return 0.0
        return instrument._sample()["value"]

    def total(self, name: str) -> float:
        """A counter's value summed across all label sets of ``name``."""
        with self._lock:
            series = [
                instrument for (n, _), instrument in self._series.items()
                if n == name
            ]
        return sum(s._sample().get("value", 0.0) for s in series)

    # ------------------------------------------------------ snapshot / merge

    def snapshot(self) -> dict:
        """The registry as one plain-JSON dict (see :mod:`repro.metrics`)."""
        with self._lock:
            items = sorted(self._series.items())
        metrics = []
        for (name, labels), instrument in items:
            row = {
                "name": name,
                "type": instrument.kind,
                "labels": dict(labels),
            }
            row.update(instrument._sample())
            metrics.append(row)
        return {
            "schema": "repro.metrics/1",
            "metrics": metrics,
            "calibration": self.calibration.snapshot(),
        }

    def merge(self, snapshot: Mapping) -> None:
        """Fold a :meth:`snapshot` in (worker deltas, per-run registries)."""
        for row in snapshot.get("metrics", ()):
            instrument = self._instrument(
                row["type"],
                row["name"],
                dict(row.get("labels", {})),
                edges=row.get("edges"),
            )
            instrument._merge(row)
        self.calibration.merge(snapshot.get("calibration", {}))

    def reset(self) -> None:
        """Drop every instrument and the calibration history."""
        with self._lock:
            self._series.clear()
        self.calibration = CalibrationTracker()

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self)} series)"


# ------------------------------------------------------------- activation

_GLOBAL = MetricsRegistry()

_ACTIVE: ContextVar["MetricsRegistry | None"] = ContextVar(
    "repro_metrics_registry", default=None
)


def global_metrics() -> MetricsRegistry:
    """The process-wide registry every session view aggregates into."""
    return _GLOBAL


def active_metrics() -> "MetricsRegistry | None":
    """The registry installed in the current context (None: metrics off)."""
    return _ACTIVE.get()


@contextmanager
def collecting(
    registry: "MetricsRegistry | None" = None,
) -> Iterator["MetricsRegistry"]:
    """Install a registry for the duration of the ``with`` block.

    .. code-block:: python

        from repro.metrics import collecting

        with collecting() as reg:
            result = run_hypercube(q, db, p=64)
        assert reg.value("repro_sim_bits_total") == \\
            result.load_report.total_bits

    Every simulation, storage manager and pool driver that runs inside
    the block counts into ``reg``; nesting installs the inner registry
    and restores the outer one on exit.  ``Session`` runs with
    ``ClusterConfig(metrics=True)`` manage this scope themselves (one
    fresh registry per run, rolled up into ``session.metrics`` and the
    global registry).
    """
    reg = MetricsRegistry() if registry is None else registry
    token = _ACTIVE.set(reg)
    try:
        yield reg
    finally:
        _ACTIVE.reset(token)
