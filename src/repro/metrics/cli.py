"""``python -m repro metrics``: render or diff snapshot artifacts.

Offline counterpart of the live registry: ``run --metrics
--metrics-out FILE`` (or :func:`repro.metrics.write_snapshot`) leaves
a JSON snapshot on disk; this command renders it as Prometheus-style
text (default), as JSON (``--json``), or as a series-by-series delta
against a second snapshot (``--diff``).
"""

from __future__ import annotations

import json

from repro.metrics.exposition import load_snapshot, render_diff, render_text


def render_snapshot_path(
    path: str, *, as_json: bool = False, diff: str | None = None
) -> str:
    """The string the ``metrics`` subcommand prints."""
    snapshot = load_snapshot(path)
    if diff is not None:
        return render_diff(snapshot, load_snapshot(diff))
    if as_json:
        return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    return render_text(snapshot)
