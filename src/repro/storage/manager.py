"""Spill-directory ownership and chunk budgets for out-of-core runs.

A :class:`StorageManager` is the capability every out-of-core execution
path shares: it owns one spill directory of ``.npy`` chunk files,
hands out append-mode :class:`~repro.storage.chunked.ChunkedRelation`
spools with a common ``chunk_rows`` granularity, accounts the bytes and
chunk files written, and removes the directory at :meth:`close` (also
on garbage collection and on context-manager exit), so a crashed or
interrupted run cannot leak gigabytes of spill files.

``from_budget`` derives a chunk granularity from a byte budget: the
executors stream one chunk at a time and materialize at most one
per-server fragment, so keeping individual chunks a small fraction of
the budget keeps the peak resident set under it.
"""

from __future__ import annotations

import pathlib
import re
import shutil
import tempfile
import threading

from repro.metrics.registry import active_metrics
from repro.trace.recorder import active_recorder

#: Rows per chunk when neither the caller nor a budget says otherwise
#: (1M rows = 16 MB per binary int64 chunk).
DEFAULT_CHUNK_ROWS = 1 << 20

_SAFE_NAME = re.compile(r"[^A-Za-z0-9_.-]+")


class StorageManager:
    """Owns a spill directory, a chunk budget, and spool lifecycle.

    Parameters
    ----------
    root:
        Directory for the ``.npy`` chunk files.  ``None`` (the default)
        creates a private temporary directory that :meth:`close`
        removes.  An explicit ``root`` is created if missing and removed
        on close unless ``keep=True``.
    chunk_rows:
        Rows per spilled chunk for every spool this manager creates.
    memory_budget_bytes:
        The advisory resident-set budget this manager was sized for
        (recorded for reporting; :meth:`from_budget` derives
        ``chunk_rows`` from it).
    keep:
        When true, :meth:`close` leaves the spill files on disk.
    """

    def __init__(
        self,
        root: str | pathlib.Path | None = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        memory_budget_bytes: int | None = None,
        keep: bool = False,
    ):
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        if memory_budget_bytes is not None and memory_budget_bytes < 1:
            raise ValueError("memory_budget_bytes must be >= 1")
        self.chunk_rows = int(chunk_rows)
        self.memory_budget_bytes = memory_budget_bytes
        self.keep = keep
        if root is None:
            self.root = pathlib.Path(
                tempfile.mkdtemp(prefix="repro-spill-")
            )
        else:
            self.root = pathlib.Path(root)
            self.root.mkdir(parents=True, exist_ok=True)
        self._counter = 0
        self._closed = False
        # Concurrent executions may share one manager (a Session's
        # run_many): path allocation and spill accounting are the only
        # cross-run mutations, so they take this lock.
        self._lock = threading.Lock()
        #: Bytes written to spill files over the manager's lifetime
        #: (monotonic; deleting a spool does not subtract).
        self.bytes_spilled = 0
        #: Spill files written over the manager's lifetime.
        self.chunks_spilled = 0
        #: Bytes read back from spill files (parent-side accounting:
        #: serial chunk reads count the memmap's full payload, and a
        #: chunk handed to a pool worker counts once when the handle is
        #: created -- every handle is loaded exactly once downstream).
        self.bytes_read = 0
        #: Spill-file read accesses (same accounting point as
        #: :attr:`bytes_read`).
        self.reads = 0
        #: Bytes currently live on disk (written minus unlinked).
        self.live_bytes = 0
        #: High-water mark of :attr:`live_bytes` -- the run's real peak
        #: disk footprint.
        self.peak_live_bytes = 0
        # Per-file sizes so unlink accounting needs no stat call.
        self._chunk_sizes: dict[str, int] = {}

    @classmethod
    def from_budget(
        cls,
        memory_budget_bytes: int,
        root: str | pathlib.Path | None = None,
        keep: bool = False,
    ) -> "StorageManager":
        """Size a manager for a resident-set byte budget.

        The dominant resident cost of a streaming run is not the chunk
        being routed but the *tails*: every per-server per-tag spool
        keeps up to one partial chunk in memory (p servers times a few
        tags), so chunks are sized to ~1/512 of the budget (clamped to
        [1024, 2^22] rows for an arity-4 int64 row).  Hundreds of
        concurrent spool tails then sum to well under the budget, and
        the remaining headroom absorbs the largest single per-server
        fragment at join time.
        """
        if memory_budget_bytes < 1:
            raise ValueError("memory_budget_bytes must be >= 1")
        target_chunk_bytes = memory_budget_bytes // 512
        chunk_rows = target_chunk_bytes // (4 * 8)
        chunk_rows = max(1024, min(DEFAULT_CHUNK_ROWS * 4, chunk_rows))
        return cls(
            root=root,
            chunk_rows=chunk_rows,
            memory_budget_bytes=memory_budget_bytes,
            keep=keep,
        )

    # ------------------------------------------------------------- spools

    def spool(
        self, name: str, arity: int, chunk_rows: int | None = None
    ) -> "ChunkedRelation":
        """A new empty append-mode chunked relation backed by this manager."""
        from repro.storage.chunked import ChunkedRelation

        return ChunkedRelation(
            name, arity, storage=self, chunk_rows=chunk_rows
        )

    def new_chunk_path(self, hint: str) -> pathlib.Path:
        """A fresh spill-file path (unique per manager, safe name).

        Thread-safe: concurrent runs sharing the manager never collide
        on a path.
        """
        if self._closed:
            raise RuntimeError("storage manager is closed")
        with self._lock:
            self._counter += 1
            counter = self._counter
        safe = _SAFE_NAME.sub("_", hint)[:80] or "chunk"
        return self.root / f"{counter:08d}-{safe}.npy"

    def account_spill(
        self, nbytes: int, path: str | pathlib.Path | None = None
    ) -> None:
        """Record one spilled chunk (called by spools on every write)."""
        nbytes = int(nbytes)
        with self._lock:
            self.bytes_spilled += nbytes
            self.chunks_spilled += 1
            self.live_bytes += nbytes
            if self.live_bytes > self.peak_live_bytes:
                self.peak_live_bytes = self.live_bytes
            if path is not None:
                self._chunk_sizes[str(path)] = nbytes
        recorder = active_recorder()
        if recorder is not None:
            recorder.spill(
                "write", str(path) if path is not None else None, nbytes
            )
        metrics = active_metrics()
        if metrics is not None:
            metrics.counter("repro_spill_bytes_written_total").inc(nbytes)
            metrics.counter("repro_spill_writes_total").inc()

    def account_read(
        self, nbytes: int, path: str | pathlib.Path | None = None
    ) -> None:
        """Record one spill-chunk read access (or worker hand-off)."""
        nbytes = int(nbytes)
        with self._lock:
            self.bytes_read += nbytes
            self.reads += 1
        recorder = active_recorder()
        if recorder is not None:
            recorder.spill(
                "read", str(path) if path is not None else None, nbytes
            )
        metrics = active_metrics()
        if metrics is not None:
            metrics.counter("repro_spill_bytes_read_total").inc(nbytes)
            metrics.counter("repro_spill_reads_total").inc()

    def account_unlink(self, path: str | pathlib.Path) -> None:
        """Record a spill file's deletion (keeps :attr:`live_bytes` true)."""
        with self._lock:
            nbytes = self._chunk_sizes.pop(str(path), 0)
            self.live_bytes -= nbytes

    def io_counters(self) -> dict[str, int]:
        """A snapshot of the cumulative spill I/O counters.

        ``dispatch_run`` diffs two snapshots to attach per-run spill
        stats to the :class:`~repro.mpc.report.LoadReport`.
        """
        with self._lock:
            return {
                "bytes_written": self.bytes_spilled,
                "files_created": self.chunks_spilled,
                "bytes_read": self.bytes_read,
                "reads": self.reads,
                "live_bytes": self.live_bytes,
                "peak_live_bytes": self.peak_live_bytes,
            }

    @property
    def bytes_written(self) -> int:
        """Alias of :attr:`bytes_spilled` under the I/O-counter naming."""
        return self.bytes_spilled

    @property
    def files_created(self) -> int:
        """Alias of :attr:`chunks_spilled` under the I/O-counter naming."""
        return self.chunks_spilled

    # ------------------------------------------------------------ pickling

    def __getstate__(self) -> dict:
        """Pickle as a *read-only handle* to the spill directory.

        Process-pool workers receive chunked relations whose spill
        files they re-open by path; the manager rides along only so
        those paths stay resolvable.  The thread lock is unpicklable
        and dropped (recreated on unpickle), and the copy is marked
        ``keep=True`` so a worker-side ``close()``/garbage collection
        can never delete the parent's spill directory.
        """
        state = self.__dict__.copy()
        del state["_lock"]
        state["keep"] = True
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ----------------------------------------------------------- lifecycle

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Remove the spill directory (idempotent; kept if ``keep``)."""
        if self._closed:
            return
        self._closed = True
        if not self.keep:
            shutil.rmtree(self.root, ignore_errors=True)

    def __enter__(self) -> "StorageManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        budget = (
            f", budget={self.memory_budget_bytes:,}B"
            if self.memory_budget_bytes
            else ""
        )
        return (
            f"StorageManager(root={str(self.root)!r}, "
            f"chunk_rows={self.chunk_rows}{budget}, "
            f"spilled={self.bytes_spilled:,}B/{self.chunks_spilled} chunks)"
        )
