"""Out-of-core chunked relation storage (``repro.storage``).

The subsystem behind ``n`` far beyond RAM: relations and per-server
fragments live as fixed-size ``(chunk_rows, arity)`` numpy chunks
backed by ``.npy`` memory-mapped spill files, and every hot path can
consume them chunk-by-chunk instead of as monoliths.

* :class:`StorageManager` -- owns a spill directory, the chunk budget,
  and lifecycle (context manager; removes spill files on close).
* :class:`ChunkedRelation` -- a :class:`~repro.data.relation.Relation`
  stored as chunks, with an append-mode spool form for streaming
  writers (generators, the simulator's per-server fragments, the
  multi-round executor's inter-round views).
* :func:`iter_array_chunks` -- the one seam executors stream through;
  it preserves row order, which is what keeps chunked execution
  bit-identical (answers, per-server loads, capacity truncation) to
  the in-memory columnar backend.

Typical out-of-core run::

    from repro.storage import StorageManager

    with StorageManager.from_budget(2 * 1024**3) as storage:
        db = matching_database(q, m=10**8, n=4 * 10**8, seed=0,
                               storage=storage)
        result = run_hypercube(q, db, p=64, storage=storage)
"""

from repro.storage.chunked import ChunkedRelation, iter_array_chunks
from repro.storage.manager import DEFAULT_CHUNK_ROWS, StorageManager

__all__ = [
    "ChunkedRelation",
    "StorageManager",
    "iter_array_chunks",
    "DEFAULT_CHUNK_ROWS",
]
