"""Chunked relations: fixed-size numpy chunks with ``.npy`` spill files.

A :class:`ChunkedRelation` stores a relation (or an append-mode spool of
row batches) as a sequence of ``(chunk_rows, arity)`` int64 chunks.
Full chunks spill to ``.npy`` files owned by a
:class:`~repro.storage.manager.StorageManager` and are read back as
read-only memory maps, so a relation of ``n`` rows is never resident in
full; the partial tail chunk stays in memory, which doubles as the
small-relation fast path (a spool below ``chunk_rows`` rows never
touches disk).  Without a manager, full chunks stay as in-memory arrays
-- the chunk *iteration* contract is identical either way, which is
what lets the property suites exercise chunked execution without a
filesystem.

Unlike :class:`~repro.data.relation.Relation` (whose canonical array is
sorted and deduplicated), a chunked relation stores rows in **append
order** and trusts the writer on distinctness: executors append
already-deduplicated fragments, :meth:`from_array` canonicalizes
through :func:`~repro.data.arrays.unique_rows` first, and the streaming
generators produce injective columns.  Set-style APIs inherited from
``Relation`` materialize the tuples on first use, exactly like an
array-born relation.
"""

from __future__ import annotations

import pathlib
from collections import Counter
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.data.arrays import unique_rows, unique_rows_with_counts
from repro.data.relation import Relation, validate_array_domain
from repro.storage.manager import DEFAULT_CHUNK_ROWS, StorageManager


class ChunkedRelation(Relation):
    """A relation stored as fixed-size chunks, spilled past ``chunk_rows``.

    Created empty and filled through :meth:`append` (the spool form the
    executors use for per-server fragments and inter-round views), or
    from an existing array via :meth:`from_array` /
    :meth:`from_relation`.  Reading is by :meth:`chunks`; the inherited
    set-semantics API works but materializes.
    """

    __slots__ = ("chunk_rows", "_storage", "_parts", "_tail", "_tail_rows",
                 "_num_rows")

    def __init__(
        self,
        name: str,
        arity: int,
        storage: StorageManager | None = None,
        chunk_rows: int | None = None,
    ):
        if arity < 1:
            raise ValueError("relation arity must be >= 1")
        if chunk_rows is None:
            chunk_rows = storage.chunk_rows if storage else DEFAULT_CHUNK_ROWS
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        self.name = name
        self.arity = arity
        self.chunk_rows = int(chunk_rows)
        self._storage = storage
        self._parts: list[np.ndarray | pathlib.Path] = []
        self._tail: list[np.ndarray] = []
        self._tail_rows = 0
        self._num_rows = 0
        # Base-class caches (set semantics materializes lazily).
        self._tuples_cache = None
        self._hash = None
        self._array = None

    # ------------------------------------------------------------ building

    @classmethod
    def from_array(
        cls,
        name: str,
        array: np.ndarray,
        storage: StorageManager | None = None,
        chunk_rows: int | None = None,
    ) -> "ChunkedRelation":
        """Canonicalize ``array`` (sorted, distinct) and chunk it.

        The chunk stream then enumerates exactly the rows of
        ``Relation.from_array(name, array).to_array()`` in the same
        order, which is what makes chunked execution bit-identical to
        the in-memory path.
        """
        array = np.asarray(array)
        if array.ndim != 2:
            raise ValueError(
                f"need a 2-D (n, arity) array, got shape {array.shape}"
            )
        if array.dtype.kind not in "iu":
            raise TypeError(f"need an integer array, got dtype {array.dtype}")
        canonical = unique_rows(array.astype(np.int64, copy=False))
        out = cls(name, array.shape[1], storage=storage, chunk_rows=chunk_rows)
        out.append(canonical)
        return out

    @classmethod
    def from_relation(
        cls,
        relation: Relation,
        storage: StorageManager | None = None,
        chunk_rows: int | None = None,
    ) -> "ChunkedRelation":
        """The chunked twin of an in-memory relation (canonical order)."""
        return cls.from_array(
            relation.name,
            relation.to_array(),
            storage=storage,
            chunk_rows=chunk_rows,
        )

    def append(self, rows: np.ndarray) -> None:
        """Append a ``(k, arity)`` batch; full chunks spill immediately."""
        rows = np.asarray(rows)
        if rows.ndim != 2 or rows.shape[1] != self.arity:
            raise ValueError(
                f"need a (k, {self.arity}) batch, got shape {rows.shape}"
            )
        if len(rows) == 0:
            return
        rows = rows.astype(np.int64, copy=False)
        if self._tuples_cache is not None:
            # Keep the lazily-materialized set view coherent.
            self._tuples_cache = None
            self._hash = None
        self._tail.append(rows)
        self._tail_rows += len(rows)
        self._num_rows += len(rows)
        if self._tail_rows >= self.chunk_rows:
            self._flush_full_chunks()

    def _flush_full_chunks(self) -> None:
        """Close every full ``chunk_rows`` block of the buffer.

        The leftover rows are *copied* into the new tail: a view into
        the appended batch would keep the whole batch alive (a 1-row
        tail pinning a gigabyte view fragment), silently turning an
        out-of-core spool back into an in-memory one.
        """
        merged = (
            self._tail[0]
            if len(self._tail) == 1
            else np.concatenate(self._tail, axis=0)
        )
        full = (len(merged) // self.chunk_rows) * self.chunk_rows
        for start in range(0, full, self.chunk_rows):
            self._store(
                np.ascontiguousarray(merged[start:start + self.chunk_rows])
            )
        rest = merged[full:]
        self._tail = [rest.copy()] if len(rest) else []
        self._tail_rows = len(rest)

    def _store(self, chunk: np.ndarray) -> None:
        if self._storage is None:
            self._parts.append(chunk)
            return
        path = self._storage.new_chunk_path(f"{self.name}-{len(self._parts)}")
        np.save(path, chunk, allow_pickle=False)
        self._storage.account_spill(chunk.nbytes, path)
        self._parts.append(path)

    def drop(self) -> None:
        """Discard all rows, deleting this spool's spill files."""
        for part in self._parts:
            if isinstance(part, pathlib.Path):
                if self._storage is not None:
                    self._storage.account_unlink(part)
                part.unlink(missing_ok=True)
        self._parts = []
        self._tail = []
        self._tail_rows = 0
        self._num_rows = 0
        self._tuples_cache = None
        self._hash = None

    # ------------------------------------------------------------- reading

    @property
    def num_chunks(self) -> int:
        """Closed chunks plus the in-memory tail (if any)."""
        return len(self._parts) + (1 if self._tail_rows else 0)

    @property
    def spilled_chunks(self) -> int:
        """Chunks currently backed by ``.npy`` files."""
        return sum(1 for part in self._parts if isinstance(part, pathlib.Path))

    def chunks(self) -> Iterator[np.ndarray]:
        """Yield every chunk in append order.

        Spilled chunks come back as read-only memory maps: only the
        pages a consumer touches become resident, and they are released
        when the chunk array goes out of scope.
        """
        for part in self._parts:
            if isinstance(part, pathlib.Path):
                if (
                    self._storage is not None
                    and self._storage.closed
                    and not self._storage.keep
                ):
                    raise RuntimeError(
                        f"spill files of {self.name!r} are gone: its "
                        "StorageManager is closed -- materialize "
                        "results (answers, to_array()) before closing "
                        "the manager"
                    )
                arr = np.load(part, mmap_mode="r", allow_pickle=False)
                if self._storage is not None:
                    self._storage.account_read(arr.nbytes, part)
                yield arr
            else:
                yield part
        if self._tail_rows:
            if len(self._tail) > 1:
                self._tail = [np.concatenate(self._tail, axis=0)]
            yield self._tail[0]

    def chunk_handles(self) -> list[np.ndarray | pathlib.Path]:
        """Every chunk as a shippable handle, in append order.

        Spilled chunks come back as their ``.npy`` *paths* (no memmap
        is opened here); in-memory chunks and the tail come back as
        arrays.  This is the zero-copy hand-off for process-pool
        workers: a path pickles as a few bytes and the worker re-opens
        it as a read-only memmap, instead of the parent pickling the
        chunk's contents.  Loading every handle reproduces exactly the
        rows of :meth:`chunks` in the same order.
        """
        handles: list[np.ndarray | pathlib.Path] = list(self._parts)
        if self._storage is not None:
            # Workers re-open path handles with bare np.load and cannot
            # reach the manager, so each spilled handle's eventual read
            # is accounted here, at creation.  Spilled chunks are always
            # exactly chunk_rows rows (only full chunks spill).
            for handle in handles:
                if isinstance(handle, pathlib.Path):
                    self._storage.account_read(
                        self.chunk_rows * self.arity * 8, handle
                    )
        if self._tail_rows:
            if len(self._tail) > 1:
                self._tail = [np.concatenate(self._tail, axis=0)]
            handles.append(self._tail[0])
        return handles

    def __len__(self) -> int:
        return self._num_rows

    @property
    def nbytes(self) -> int:
        """Total payload bytes across all chunks."""
        return self._num_rows * self.arity * 8

    def to_array(self) -> np.ndarray:
        """Materialize every chunk into one in-memory array.

        Deliberately **not** cached on the relation (unlike the base
        class): holding the full array would defeat the point of
        chunked storage, so each call pays the concatenation.
        """
        if self._num_rows == 0:
            return np.empty((0, self.arity), dtype=np.int64)
        # np.array (not asarray): copy each memmap chunk so its file
        # descriptor closes before the next chunk opens.
        return np.concatenate([np.array(c) for c in self.chunks()], axis=0)

    @property
    def _tuples(self):
        if self._tuples_cache is None:
            self._tuples_cache = frozenset(
                map(tuple, self.to_array().tolist())
            )
        return self._tuples_cache

    # --------------------------------------------------- chunk-wise queries

    def validate_domain(self, domain_size: int) -> None:
        """Domain check, one chunk at a time (never materializes)."""
        for chunk in self.chunks():
            validate_array_domain(np.asarray(chunk), self.name, domain_size)

    def degrees(self, positions: Sequence[int]) -> Counter:
        """Chunk-wise, vectorized ``d_J`` histogram over ``positions``."""
        positions = tuple(positions)
        for p in positions:
            self._check_position(p)
        out: Counter = Counter()
        for chunk in self.chunks():
            arr = np.asarray(chunk)[:, positions]
            if len(positions) == 1:
                values, counts = np.unique(arr[:, 0], return_counts=True)
                keys: Iterable = ((int(v),) for v in values)
            else:
                values, counts = unique_rows_with_counts(arr)
                keys = map(tuple, values.tolist())
            for key, count in zip(keys, counts):
                out[key] += int(count)
        return out

    def __repr__(self) -> str:
        return (
            f"ChunkedRelation({self.name!r}, arity={self.arity}, "
            f"rows={self._num_rows}, chunks={self.num_chunks}, "
            f"spilled={self.spilled_chunks})"
        )


def iter_array_chunks(
    source: "Relation | np.ndarray",
    chunk_rows: int | None = None,
) -> Iterator[np.ndarray]:
    """Yield ``(k, arity)`` chunks of any relation-shaped source.

    The single seam the streaming executors route through:

    * a :class:`ChunkedRelation` yields its own chunks (its stored
      granularity wins -- rows must not be re-buffered to re-chunk);
    * an in-memory :class:`Relation` yields canonical-array slices of
      ``chunk_rows`` rows (one whole-array chunk when ``None``);
    * a bare ``(n, arity)`` array is sliced the same way.

    Concatenating the yielded chunks always reproduces the source's
    rows in order, so routing chunk-by-chunk delivers every server the
    same row sequence as routing the monolith -- the invariant behind
    bit-identical loads, answers, and capacity truncation.
    """
    if isinstance(source, ChunkedRelation):
        yield from source.chunks()
        return
    array = source.to_array() if isinstance(source, Relation) else np.asarray(source)
    if chunk_rows is None or chunk_rows >= len(array):
        if len(array):
            yield array
        return
    for start in range(0, len(array), chunk_rows):
        yield array[start:start + chunk_rows]
