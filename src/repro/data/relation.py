"""Set-semantics relations over integer domains.

A :class:`Relation` is an immutable set of equal-arity integer tuples.
It exposes exactly the operations the paper's algorithms and analyses
need:

* degrees ``d_J(R) = |sigma_{J}(R)|`` for a tuple ``J`` over a subset of
  positions (Section 3.1's analysis of the HyperCube algorithm),
* heavy-hitter extraction for a frequency threshold (Section 4),
* projections / selections, and the semijoin ``A |>< B`` and antijoin
  ``A |> B`` used by the multi-round machinery (Section 5.2).

Values are plain Python ints drawn from ``[0, n)``.  Relations are
hashable and comparable, which makes test assertions cheap.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.data.arrays import unique_rows


class Relation:
    """An immutable, set-semantics relation of fixed arity.

    Internally the tuple set and the columnar array (see
    :meth:`to_array`) are two interchangeable encodings; each is
    materialized lazily from the other, so array-born relations
    (:meth:`from_array`) pay the Python-tuple cost only if a set-style
    API is actually used.
    """

    __slots__ = ("name", "arity", "_tuples_cache", "_hash", "_array",
                 "_sorted_cache")

    def __init__(self, name: str, arity: int, tuples: Iterable[tuple[int, ...]]):
        if arity < 1:
            raise ValueError("relation arity must be >= 1")
        frozen = frozenset(tuple(t) for t in tuples)
        for t in frozen:
            if len(t) != arity:
                raise ValueError(
                    f"tuple {t} has arity {len(t)}, expected {arity} in {name}"
                )
        self.name = name
        self.arity = arity
        self._tuples_cache: frozenset[tuple[int, ...]] | None = frozen
        self._hash: int | None = None
        self._array: np.ndarray | None = None
        self._sorted_cache: list[tuple[int, ...]] | None = None

    @property
    def _tuples(self) -> frozenset[tuple[int, ...]]:
        if self._tuples_cache is None:
            self._tuples_cache = frozenset(map(tuple, self._array.tolist()))
        return self._tuples_cache

    # ------------------------------------------------------------- container

    def __len__(self) -> int:
        if self._tuples_cache is None:
            return len(self._array)  # canonical array is already deduplicated
        return len(self._tuples_cache)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self._tuples)

    def __contains__(self, item: tuple[int, ...]) -> bool:
        return tuple(item) in self._tuples

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        if self.name != other.name or self.arity != other.arity:
            return False
        if self._array is not None and other._array is not None:
            return bool(np.array_equal(self._array, other._array))
        return self._tuples == other._tuples

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.name, self.arity, self._tuples))
        return self._hash

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, arity={self.arity}, size={len(self)})"

    @property
    def tuples(self) -> frozenset[tuple[int, ...]]:
        return self._tuples

    def sorted_tuples(self) -> list[tuple[int, ...]]:
        """Deterministically ordered tuples (for stable iteration).

        Cached after the first call -- the executors route every block
        in canonical order, so per-hitter loops would otherwise re-sort
        the same relation many times.  Callers must not mutate the
        returned list.
        """
        if self._sorted_cache is None:
            self._sorted_cache = sorted(self._tuples)
        return self._sorted_cache

    # ------------------------------------------------------------- columnar

    def to_array(self) -> np.ndarray:
        """The relation as a read-only ``(len, arity)`` int64 array.

        Rows are lexicographically sorted, so the array is a canonical
        encoding of the tuple set.  The array is computed once and
        cached on the relation; repeated calls are free, and callers
        share the same buffer (it is marked non-writeable).
        """
        if self._array is None:
            arr = np.fromiter(
                (v for t in self._tuples for v in t),
                dtype=np.int64,
                count=len(self._tuples) * self.arity,
            ).reshape(len(self._tuples), self.arity)
            arr = arr[np.lexsort(arr.T[::-1])]
            arr.flags.writeable = False
            self._array = arr
        return self._array

    @classmethod
    def from_array(cls, name: str, array: np.ndarray) -> "Relation":
        """Build a relation from a ``(n, arity)`` integer array.

        Duplicate rows collapse (set semantics).  The canonical sorted
        array is cached on the result, so a subsequent
        :meth:`to_array` does not re-convert.
        """
        array = np.asarray(array)
        if array.ndim != 2:
            raise ValueError(f"need a 2-D (n, arity) array, got shape {array.shape}")
        if array.shape[1] < 1:
            raise ValueError("relation arity must be >= 1")
        if array.dtype.kind not in "iu":
            raise TypeError(f"need an integer array, got dtype {array.dtype}")
        canonical = unique_rows(array.astype(np.int64, copy=False))
        canonical.flags.writeable = False
        relation = cls.__new__(cls)
        relation.name = name
        relation.arity = array.shape[1]
        relation._tuples_cache = None  # materialized on first set-API use
        relation._hash = None
        relation._array = canonical
        relation._sorted_cache = None
        return relation

    def columns(self) -> tuple[np.ndarray, ...]:
        """Per-attribute value columns of :meth:`to_array`."""
        arr = self.to_array()
        return tuple(arr[:, j] for j in range(self.arity))

    # ------------------------------------------------------------ statistics

    def column(self, position: int) -> set[int]:
        """The active domain of one attribute position."""
        self._check_position(position)
        return {t[position] for t in self._tuples}

    def active_domain(self) -> set[int]:
        """All values appearing anywhere in the relation."""
        return {v for t in self._tuples for v in t}

    def degree(self, positions: Sequence[int], values: Sequence[int]) -> int:
        """``d_J(R)``: tuples agreeing with ``values`` on ``positions``."""
        positions = tuple(positions)
        values = tuple(values)
        for p in positions:
            self._check_position(p)
        return sum(
            1
            for t in self._tuples
            if all(t[p] == v for p, v in zip(positions, values))
        )

    def degrees(self, positions: Sequence[int]) -> Counter:
        """Histogram of ``d_J`` for every ``J`` over ``positions``."""
        positions = tuple(positions)
        for p in positions:
            self._check_position(p)
        return Counter(tuple(t[p] for p in positions) for t in self._tuples)

    def max_degree(self, positions: Sequence[int]) -> int:
        """The largest degree over ``positions`` (0 for empty relations)."""
        hist = self.degrees(positions)
        return max(hist.values(), default=0)

    def heavy_hitters(
        self, position: int, threshold: float
    ) -> dict[int, int]:
        """Values whose frequency at ``position`` is >= ``threshold``.

        Section 4: a value is a heavy hitter when its frequency exceeds
        a threshold such as ``m_j / p``.  Returns ``value -> frequency``.
        """
        return {
            key[0]: count
            for key, count in self.degrees((position,)).items()
            if count >= threshold
        }

    # ------------------------------------------------------------- operators

    def project(self, positions: Sequence[int], name: str | None = None) -> "Relation":
        """Set-semantics projection onto the given positions."""
        positions = tuple(positions)
        for p in positions:
            self._check_position(p)
        out = {tuple(t[p] for p in positions) for t in self._tuples}
        return Relation(name or self.name, len(positions), out)

    def select(
        self, positions: Sequence[int], values: Sequence[int], name: str | None = None
    ) -> "Relation":
        """``sigma_{positions = values}(R)``."""
        positions = tuple(positions)
        values = tuple(values)
        out = {
            t
            for t in self._tuples
            if all(t[p] == v for p, v in zip(positions, values))
        }
        return Relation(name or self.name, self.arity, out)

    def filter(
        self, predicate: Callable[[tuple[int, ...]], bool], name: str | None = None
    ) -> "Relation":
        return Relation(
            name or self.name, self.arity, (t for t in self._tuples if predicate(t))
        )

    def semijoin(
        self,
        other: "Relation",
        self_positions: Sequence[int],
        other_positions: Sequence[int],
    ) -> "Relation":
        """``self |>< other``: tuples of ``self`` with a match in ``other``."""
        keys = other.project(other_positions).tuples
        self_positions = tuple(self_positions)
        return self.filter(
            lambda t: tuple(t[p] for p in self_positions) in keys
        )

    def antijoin(
        self,
        other: "Relation",
        self_positions: Sequence[int],
        other_positions: Sequence[int],
    ) -> "Relation":
        """``self |> other``: tuples of ``self`` with no match in ``other``."""
        keys = other.project(other_positions).tuples
        self_positions = tuple(self_positions)
        return self.filter(
            lambda t: tuple(t[p] for p in self_positions) not in keys
        )

    def union(self, other: "Relation") -> "Relation":
        if other.arity != self.arity:
            raise ValueError("union needs equal arities")
        return Relation(self.name, self.arity, self._tuples | other._tuples)

    def difference(self, other: "Relation") -> "Relation":
        if other.arity != self.arity:
            raise ValueError("difference needs equal arities")
        return Relation(self.name, self.arity, self._tuples - other._tuples)

    def renamed(self, name: str) -> "Relation":
        return Relation(name, self.arity, self._tuples)

    # ------------------------------------------------------------- invariants

    def validate_domain(self, domain_size: int) -> None:
        """Raise ``ValueError`` when any value falls outside ``[0, n)``.

        Array-born relations check vectorized; chunked relations
        (:class:`repro.storage.chunked.ChunkedRelation`) override this
        to check one chunk at a time without materializing.
        """
        arr = self._array
        if arr is not None:
            validate_array_domain(arr, self.name, domain_size)
            return
        for t in self._tuples:
            for v in t:
                if not 0 <= v < domain_size:
                    raise ValueError(
                        f"value {v} in {self.name} outside domain "
                        f"[0, {domain_size})"
                    )

    def is_matching(self) -> bool:
        """True when every value has degree exactly 1 in every column.

        This is the paper's *matching database* condition (Section 3):
        each column of the relation is an injection.
        """
        return all(
            self.max_degree((p,)) <= 1 for p in range(self.arity)
        )

    def index(self, positions: Sequence[int]) -> dict[tuple[int, ...], list[tuple[int, ...]]]:
        """Hash index: key over ``positions`` -> matching tuples."""
        positions = tuple(positions)
        out: dict[tuple[int, ...], list[tuple[int, ...]]] = {}
        for t in self._tuples:
            out.setdefault(tuple(t[p] for p in positions), []).append(t)
        return out

    def _check_position(self, position: int) -> None:
        if not 0 <= position < self.arity:
            raise IndexError(
                f"position {position} out of range for arity {self.arity}"
            )


def validate_array_domain(
    arr: np.ndarray, name: str, domain_size: int
) -> None:
    """Vectorized ``[0, n)`` bounds check for one relation-shaped array."""
    if len(arr) and (arr.min() < 0 or arr.max() >= domain_size):
        bad = int(arr[(arr < 0) | (arr >= domain_size)].flat[0])
        raise ValueError(
            f"value {bad} in {name} outside domain [0, {domain_size})"
        )


def relation_from_pairs(name: str, pairs: Iterable[tuple[int, int]]) -> Relation:
    """Convenience constructor for binary relations."""
    return Relation(name, 2, pairs)
