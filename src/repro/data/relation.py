"""Set-semantics relations over integer domains.

A :class:`Relation` is an immutable set of equal-arity integer tuples.
It exposes exactly the operations the paper's algorithms and analyses
need:

* degrees ``d_J(R) = |sigma_{J}(R)|`` for a tuple ``J`` over a subset of
  positions (Section 3.1's analysis of the HyperCube algorithm),
* heavy-hitter extraction for a frequency threshold (Section 4),
* projections / selections, and the semijoin ``A |>< B`` and antijoin
  ``A |> B`` used by the multi-round machinery (Section 5.2).

Values are plain Python ints drawn from ``[0, n)``.  Relations are
hashable and comparable, which makes test assertions cheap.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable, Iterator, Mapping, Sequence


class Relation:
    """An immutable, set-semantics relation of fixed arity."""

    __slots__ = ("name", "arity", "_tuples", "_hash")

    def __init__(self, name: str, arity: int, tuples: Iterable[tuple[int, ...]]):
        if arity < 1:
            raise ValueError("relation arity must be >= 1")
        frozen = frozenset(tuple(t) for t in tuples)
        for t in frozen:
            if len(t) != arity:
                raise ValueError(
                    f"tuple {t} has arity {len(t)}, expected {arity} in {name}"
                )
        self.name = name
        self.arity = arity
        self._tuples = frozen
        self._hash: int | None = None

    # ------------------------------------------------------------- container

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self._tuples)

    def __contains__(self, item: tuple[int, ...]) -> bool:
        return tuple(item) in self._tuples

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.name == other.name
            and self.arity == other.arity
            and self._tuples == other._tuples
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.name, self.arity, self._tuples))
        return self._hash

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, arity={self.arity}, size={len(self)})"

    @property
    def tuples(self) -> frozenset[tuple[int, ...]]:
        return self._tuples

    def sorted_tuples(self) -> list[tuple[int, ...]]:
        """Deterministically ordered tuples (for stable iteration)."""
        return sorted(self._tuples)

    # ------------------------------------------------------------ statistics

    def column(self, position: int) -> set[int]:
        """The active domain of one attribute position."""
        self._check_position(position)
        return {t[position] for t in self._tuples}

    def active_domain(self) -> set[int]:
        """All values appearing anywhere in the relation."""
        return {v for t in self._tuples for v in t}

    def degree(self, positions: Sequence[int], values: Sequence[int]) -> int:
        """``d_J(R)``: tuples agreeing with ``values`` on ``positions``."""
        positions = tuple(positions)
        values = tuple(values)
        for p in positions:
            self._check_position(p)
        return sum(
            1
            for t in self._tuples
            if all(t[p] == v for p, v in zip(positions, values))
        )

    def degrees(self, positions: Sequence[int]) -> Counter:
        """Histogram of ``d_J`` for every ``J`` over ``positions``."""
        positions = tuple(positions)
        for p in positions:
            self._check_position(p)
        return Counter(tuple(t[p] for p in positions) for t in self._tuples)

    def max_degree(self, positions: Sequence[int]) -> int:
        """The largest degree over ``positions`` (0 for empty relations)."""
        hist = self.degrees(positions)
        return max(hist.values(), default=0)

    def heavy_hitters(
        self, position: int, threshold: float
    ) -> dict[int, int]:
        """Values whose frequency at ``position`` is >= ``threshold``.

        Section 4: a value is a heavy hitter when its frequency exceeds
        a threshold such as ``m_j / p``.  Returns ``value -> frequency``.
        """
        return {
            key[0]: count
            for key, count in self.degrees((position,)).items()
            if count >= threshold
        }

    # ------------------------------------------------------------- operators

    def project(self, positions: Sequence[int], name: str | None = None) -> "Relation":
        """Set-semantics projection onto the given positions."""
        positions = tuple(positions)
        for p in positions:
            self._check_position(p)
        out = {tuple(t[p] for p in positions) for t in self._tuples}
        return Relation(name or self.name, len(positions), out)

    def select(
        self, positions: Sequence[int], values: Sequence[int], name: str | None = None
    ) -> "Relation":
        """``sigma_{positions = values}(R)``."""
        positions = tuple(positions)
        values = tuple(values)
        out = {
            t
            for t in self._tuples
            if all(t[p] == v for p, v in zip(positions, values))
        }
        return Relation(name or self.name, self.arity, out)

    def filter(
        self, predicate: Callable[[tuple[int, ...]], bool], name: str | None = None
    ) -> "Relation":
        return Relation(
            name or self.name, self.arity, (t for t in self._tuples if predicate(t))
        )

    def semijoin(
        self,
        other: "Relation",
        self_positions: Sequence[int],
        other_positions: Sequence[int],
    ) -> "Relation":
        """``self |>< other``: tuples of ``self`` with a match in ``other``."""
        keys = other.project(other_positions).tuples
        self_positions = tuple(self_positions)
        return self.filter(
            lambda t: tuple(t[p] for p in self_positions) in keys
        )

    def antijoin(
        self,
        other: "Relation",
        self_positions: Sequence[int],
        other_positions: Sequence[int],
    ) -> "Relation":
        """``self |> other``: tuples of ``self`` with no match in ``other``."""
        keys = other.project(other_positions).tuples
        self_positions = tuple(self_positions)
        return self.filter(
            lambda t: tuple(t[p] for p in self_positions) not in keys
        )

    def union(self, other: "Relation") -> "Relation":
        if other.arity != self.arity:
            raise ValueError("union needs equal arities")
        return Relation(self.name, self.arity, self._tuples | other._tuples)

    def difference(self, other: "Relation") -> "Relation":
        if other.arity != self.arity:
            raise ValueError("difference needs equal arities")
        return Relation(self.name, self.arity, self._tuples - other._tuples)

    def renamed(self, name: str) -> "Relation":
        return Relation(name, self.arity, self._tuples)

    # ------------------------------------------------------------- invariants

    def is_matching(self) -> bool:
        """True when every value has degree exactly 1 in every column.

        This is the paper's *matching database* condition (Section 3):
        each column of the relation is an injection.
        """
        return all(
            self.max_degree((p,)) <= 1 for p in range(self.arity)
        )

    def index(self, positions: Sequence[int]) -> dict[tuple[int, ...], list[tuple[int, ...]]]:
        """Hash index: key over ``positions`` -> matching tuples."""
        positions = tuple(positions)
        out: dict[tuple[int, ...], list[tuple[int, ...]]] = {}
        for t in self._tuples:
            out.setdefault(tuple(t[p] for p in positions), []).append(t)
        return out

    def _check_position(self, position: int) -> None:
        if not 0 <= position < self.arity:
            raise IndexError(
                f"position {position} out of range for arity {self.arity}"
            )


def relation_from_pairs(name: str, pairs: Iterable[tuple[int, int]]) -> Relation:
    """Convenience constructor for binary relations."""
    return Relation(name, 2, pairs)
