"""Relations, database instances, and synthetic data generators.

The paper's bounds quantify over specific input distributions: *matching
databases* (every value has degree exactly one; Section 3.2's lower
bound probability space), databases with bounded degrees (the HyperCube
analysis of Corollary 3.3), and skewed databases with *heavy hitters*
(Section 4).  This subpackage provides set-semantics relations over
integer domains ``[n]`` together with seeded generators for each of
those distributions, plus the layered graph family of Theorem 5.20.
"""

from repro.data.relation import Relation
from repro.data.database import Database
from repro.data.generators import (
    degree_sequence_relation,
    layered_path_database,
    layered_path_graph,
    matching_database,
    matching_relation,
    planted_heavy_hitter_database,
    random_graph_edges,
    triangle_database_from_edges,
    uniform_database,
    uniform_relation,
    zipf_database,
    zipf_relation,
)

__all__ = [
    "Relation",
    "Database",
    "degree_sequence_relation",
    "layered_path_database",
    "layered_path_graph",
    "matching_database",
    "matching_relation",
    "planted_heavy_hitter_database",
    "random_graph_edges",
    "triangle_database_from_edges",
    "uniform_database",
    "uniform_relation",
    "zipf_database",
    "zipf_relation",
]
