"""Database instances: a relation per atom plus the shared domain.

A :class:`Database` binds relation instances to the relation symbols of
a query and carries the domain size ``n`` used for bit accounting
(``M_j = a_j m_j log n``).  It can derive the :class:`Statistics` object
the share LPs and bound calculators consume, and validate itself against
a query (matching arities, all relations present).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.core.query import ConjunctiveQuery
from repro.core.stats import Statistics
from repro.data.relation import Relation


class Database:
    """An immutable map from relation names to :class:`Relation`."""

    __slots__ = ("domain_size", "_relations")

    def __init__(self, relations: Iterable[Relation], domain_size: int):
        if domain_size < 1:
            raise ValueError("domain size must be >= 1")
        rels = {}
        for rel in relations:
            if rel.name in rels:
                raise ValueError(f"duplicate relation {rel.name!r}")
            rels[rel.name] = rel
        self._relations: dict[str, Relation] = rels
        self.domain_size = domain_size
        for rel in rels.values():
            rel.validate_domain(domain_size)

    # ------------------------------------------------------------- container

    def __getitem__(self, name: str) -> Relation:
        return self._relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def relation(self, name: str) -> Relation:
        if name not in self._relations:
            raise KeyError(f"no relation {name!r} in database")
        return self._relations[name]

    # ------------------------------------------------------------- derived

    def statistics(self, query: ConjunctiveQuery) -> Statistics:
        """Cardinality statistics of this instance for ``query``."""
        self.validate_for(query)
        cards = {r: len(self._relations[r]) for r in query.relation_names}
        return Statistics(query, cards, self.domain_size)

    def validate_for(self, query: ConjunctiveQuery) -> None:
        """Check the instance matches the query's schema."""
        for atom in query.atoms:
            if atom.relation not in self._relations:
                raise KeyError(
                    f"query needs relation {atom.relation!r}, not in database"
                )
            rel = self._relations[atom.relation]
            if rel.arity != atom.arity:
                raise ValueError(
                    f"arity mismatch for {atom.relation!r}: "
                    f"atom has {atom.arity}, relation has {rel.arity}"
                )

    def arrays(self, query: ConjunctiveQuery | None = None) -> dict[str, np.ndarray]:
        """Columnar view: relation name -> canonical ``(n, arity)`` array.

        With a ``query``, only that query's relations are materialized
        (and the instance is validated against it first).
        """
        if query is not None:
            self.validate_for(query)
            names: Iterable[str] = query.relation_names
        else:
            names = self._relations
        return {name: self._relations[name].to_array() for name in names}

    @classmethod
    def from_arrays(
        cls, arrays: Mapping[str, np.ndarray], domain_size: int
    ) -> "Database":
        """Build a database from ``name -> (n, arity)`` integer arrays."""
        return cls(
            (Relation.from_array(name, arr) for name, arr in arrays.items()),
            domain_size,
        )

    def is_matching_database(self) -> bool:
        """Section 3's matching-database condition on every relation."""
        return all(rel.is_matching() for rel in self)

    def total_tuples(self) -> int:
        return sum(len(rel) for rel in self)

    def total_bytes(self) -> int:
        """Payload bytes of every relation as int64 columns.

        The figure memory budgets compare against: an in-memory
        columnar execution holds at least this much for the inputs
        alone, before routing replicates anything.
        """
        return sum(len(rel) * rel.arity * 8 for rel in self)

    def with_relation(self, relation: Relation) -> "Database":
        """A copy with one relation added or replaced."""
        rels = dict(self._relations)
        rels[relation.name] = relation
        return Database(rels.values(), self.domain_size)

    def restrict(self, names: Iterable[str]) -> "Database":
        """A copy containing only the named relations."""
        wanted = set(names)
        missing = wanted - set(self._relations)
        if missing:
            raise KeyError(f"unknown relations {sorted(missing)}")
        return Database(
            (self._relations[n] for n in self._relations if n in wanted),
            self.domain_size,
        )

    def renamed(self, mapping: Mapping[str, str]) -> "Database":
        """A copy with relations renamed through ``mapping``."""
        return Database(
            (
                rel.renamed(mapping.get(rel.name, rel.name))
                for rel in self._relations.values()
            ),
            self.domain_size,
        )
