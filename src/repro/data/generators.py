"""Seeded synthetic data generators for every distribution in the paper.

* :func:`matching_relation` / :func:`matching_database` -- the *matching
  probability space* of Section 3.2 (every column an injection, all
  degrees exactly 1).  These are the skew-free inputs for which the
  HyperCube algorithm is optimal.
* :func:`uniform_relation` -- uniform random distinct tuples (low skew
  with high probability; exercises the Corollary 3.3 degree condition).
* :func:`zipf_relation` -- Zipf-distributed column values: the standard
  skewed workload (Section 4's motivation).
* :func:`planted_heavy_hitter_database` -- adversarial skew: a chosen
  fraction of tuples share one value, as in Example 4.1 where *all*
  tuples agree on the join variable ``z``.
* :func:`degree_sequence_relation` -- exact frequency vectors
  ``m_j(h)``, i.e. the x-statistics of Section 4.2.
* :func:`layered_path_graph` / :func:`layered_path_database` -- the
  Theorem 5.20 graph family whose connected components are the answers
  of a chain query ``L_k``.
* :func:`random_graph_edges` / :func:`triangle_database_from_edges` --
  graphs for the triangle-query examples.

Every generator takes an explicit integer ``seed`` (or an already-seeded
``random.Random``), so all experiments replay deterministically.

The matching and zipf generators additionally accept a ``backend``:
``"python"`` draws from a ``random.Random`` stream, ``"numpy"`` draws
the same distribution families with a vectorized
``numpy.random.Generator`` stream, building relations column-wise
(array-born via :meth:`Relation.from_array`, no Python tuples).  The
columnar stream is what makes ``n = 10^7`` planner/skew benchmark
setups take seconds instead of minutes; ``backend=None`` resolves to
``repro.config.DEFAULT_GENERATOR_BACKEND`` (``"numpy"``), which is
deliberately independent of the execution-engine switch.  The two
backends are each deterministic per seed but draw from *different*
streams, so for equal seeds they produce different (equally
distributed) instances -- which is exactly why switching execution
engines must not silently switch the generator stream.

The matching and zipf generators also take ``storage=`` (a
:class:`~repro.storage.manager.StorageManager`) and ``chunk_rows=``:
they then build :class:`~repro.storage.chunked.ChunkedRelation`\\ s,
writing ``(chunk_rows, arity)`` chunks straight to spill files.  The
matching generator is fully streaming -- each column is a keyed Feistel
permutation of ``[0, n)`` (:mod:`repro.hashing.permutation`) evaluated
chunk-by-chunk, so ``n = 10^8`` relations materialize without ever
holding ``n`` rows (``rng.choice(n, m, replace=False)`` would allocate
the length-``n`` permutation the out-of-core path exists to avoid).
The storage variants are their own deterministic per-seed streams,
distinct from both in-memory streams for the same reason the two
in-memory streams are distinct from each other.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.config import GeneratorBackend, resolve_generator_backend
from repro.core.query import ConjunctiveQuery
from repro.data.arrays import encode_rows
from repro.data.database import Database
from repro.data.relation import Relation
from repro.hashing.permutation import PseudorandomPermutation
from repro.storage.chunked import ChunkedRelation
from repro.storage.manager import StorageManager


def _rng(seed_or_rng: int | random.Random) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def _np_rng(
    seed_or_rng: int | random.Random | np.random.Generator,
) -> np.random.Generator:
    """A seeded ``numpy`` generator from any accepted seed form."""
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    if isinstance(seed_or_rng, random.Random):
        return np.random.default_rng(seed_or_rng.getrandbits(64))
    return np.random.default_rng(seed_or_rng)


# --------------------------------------------------------------------------
# Matching databases (Section 3.2's probability space)
# --------------------------------------------------------------------------


def matching_relation(
    name: str,
    arity: int,
    m: int,
    n: int,
    seed: int | random.Random | np.random.Generator = 0,
    backend: GeneratorBackend | None = None,
    storage: StorageManager | None = None,
    chunk_rows: int | None = None,
) -> Relation:
    """A uniform random ``arity``-dimensional matching of size ``m``.

    Every column is a random injection ``[m] -> [n]``, so every value
    has degree exactly 1 in every column -- the paper's matching
    condition.  Requires ``m <= n``.  ``backend="numpy"`` draws the
    columns vectorized and returns an array-born relation.

    With ``storage`` the relation is born chunked: each column is a
    keyed Feistel permutation of ``[0, n)`` restricted to ``[0, m)``
    (still an injection, hence still a matching) evaluated one
    ``chunk_rows`` block at a time and written straight to spill files,
    so peak memory is one chunk no matter how large ``m`` is.  The
    storage stream is deterministic per seed but distinct from the
    in-memory streams.
    """
    backend = resolve_generator_backend(backend)
    if m > n:
        raise ValueError(f"matching needs m <= n (got m={m}, n={n})")
    if storage is not None:
        return _matching_relation_storage(
            name, arity, m, n, _np_rng(seed), storage, chunk_rows
        )
    if backend == "numpy":
        rng = _np_rng(seed)
        if m == 0:
            return Relation.from_array(name, np.empty((0, arity), dtype=np.int64))
        columns = [
            rng.choice(n, size=m, replace=False).astype(np.int64)
            for _ in range(arity)
        ]
        return Relation.from_array(name, np.stack(columns, axis=1))
    rng = _rng(seed)
    columns = [rng.sample(range(n), m) for _ in range(arity)]
    return Relation(name, arity, set(zip(*columns)) if m else set())


def _matching_relation_storage(
    name: str,
    arity: int,
    m: int,
    n: int,
    rng: np.random.Generator,
    storage: StorageManager,
    chunk_rows: int | None,
) -> ChunkedRelation:
    """Streaming matching generation: O(chunk) memory for any ``m``."""
    out = ChunkedRelation(name, arity, storage=storage, chunk_rows=chunk_rows)
    permutations = [
        PseudorandomPermutation.from_rng(n, rng) for _ in range(arity)
    ]
    step = out.chunk_rows
    for start in range(0, m, step):
        index = np.arange(start, min(start + step, m), dtype=np.int64)
        out.append(
            np.stack(
                [perm.apply_array(index) for perm in permutations], axis=1
            )
        )
    return out


def matching_database(
    query: ConjunctiveQuery,
    m: int | Mapping[str, int],
    n: int,
    seed: int | random.Random = 0,
    backend: GeneratorBackend | None = None,
    storage: StorageManager | None = None,
    chunk_rows: int | None = None,
) -> Database:
    """A matching database for ``query`` with cardinalities ``m``.

    With ``storage`` every relation is generated streaming into
    disk-backed chunks (see :func:`matching_relation`).
    """
    backend = resolve_generator_backend(backend)
    rng = (
        _np_rng(seed)
        if backend == "numpy" or storage is not None
        else _rng(seed)
    )
    sizes = _size_map(query, m)
    relations = [
        matching_relation(
            atom.relation, atom.arity, sizes[atom.relation], n, rng,
            backend=backend, storage=storage, chunk_rows=chunk_rows,
        )
        for atom in query.atoms
    ]
    return Database(relations, n)


# --------------------------------------------------------------------------
# Uniform random databases
# --------------------------------------------------------------------------


def uniform_relation(
    name: str, arity: int, m: int, n: int, seed: int | random.Random = 0
) -> Relation:
    """``m`` distinct tuples drawn uniformly from ``[n]^arity``."""
    if m > n**arity:
        raise ValueError(f"cannot draw {m} distinct tuples from [{n}]^{arity}")
    rng = _rng(seed)
    tuples: set[tuple[int, ...]] = set()
    while len(tuples) < m:
        tuples.add(tuple(rng.randrange(n) for _ in range(arity)))
    return Relation(name, arity, tuples)


def uniform_database(
    query: ConjunctiveQuery,
    m: int | Mapping[str, int],
    n: int,
    seed: int | random.Random = 0,
) -> Database:
    rng = _rng(seed)
    sizes = _size_map(query, m)
    relations = [
        uniform_relation(atom.relation, atom.arity, sizes[atom.relation], n, rng)
        for atom in query.atoms
    ]
    return Database(relations, n)


# --------------------------------------------------------------------------
# Skewed databases
# --------------------------------------------------------------------------


def zipf_relation(
    name: str,
    arity: int,
    m: int,
    n: int,
    skew: float = 1.0,
    seed: int | random.Random | np.random.Generator = 0,
    skew_positions: Sequence[int] | None = None,
    max_attempts_factor: int = 50,
    backend: GeneratorBackend | None = None,
    storage: StorageManager | None = None,
    chunk_rows: int | None = None,
) -> Relation:
    """Up to ``m`` distinct tuples with Zipf(``skew``)-distributed values.

    Positions in ``skew_positions`` (default: all) draw values with
    probability proportional to ``1/rank^skew``; other positions are
    uniform.  Because tuples are deduplicated, extremely skewed
    configurations may saturate below ``m`` distinct tuples; generation
    stops after ``max_attempts_factor * m`` draws.  ``backend="numpy"``
    draws whole batches vectorized (inverse-CDF via ``searchsorted``)
    and keeps the first ``m`` distinct rows in draw order.

    With ``storage`` accepted rows stream to disk-backed chunks as they
    are drawn; when a whole row packs into 63 bits the global dedup
    holds only one ``int64`` key per distinct row instead of the rows
    themselves.  (Unlike the matching generator, zipf draws are
    inherently O(m) in dedup state and O(n) in the CDF table.)
    """
    backend = resolve_generator_backend(backend)
    if storage is not None:
        return _zipf_relation_storage(
            name, arity, m, n, skew, _np_rng(seed), skew_positions,
            max_attempts_factor, storage, chunk_rows,
        )
    if backend == "numpy":
        return _zipf_relation_numpy(
            name, arity, m, n, skew, _np_rng(seed), skew_positions,
            max_attempts_factor,
        )
    rng = _rng(seed)
    positions = set(range(arity) if skew_positions is None else skew_positions)
    weights = [1.0 / (rank**skew) for rank in range(1, n + 1)]
    cumulative = list(itertools.accumulate(weights))
    total = cumulative[-1]

    def zipf_value() -> int:
        x = rng.random() * total
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < x:
                lo = mid + 1
            else:
                hi = mid
        return lo

    tuples: set[tuple[int, ...]] = set()
    attempts = 0
    while len(tuples) < m and attempts < max_attempts_factor * m:
        attempts += 1
        tuples.add(
            tuple(
                zipf_value() if pos in positions else rng.randrange(n)
                for pos in range(arity)
            )
        )
    return Relation(name, arity, tuples)


def _zipf_cdf(n: int, skew: float) -> tuple[np.ndarray, float]:
    """The cumulative Zipf(``skew``) weights over ``[0, n)``."""
    cumulative = np.cumsum(1.0 / np.arange(1, n + 1, dtype=np.float64) ** skew)
    return cumulative, float(cumulative[-1])


def _zipf_batch_size(accepted: int, attempts: int, m: int, budget: int) -> int:
    """How many rows to draw next, sized by the acceptance rate.

    Under heavy skew most draws repeat, so sizing by the observed rate
    instead of the optimistic ``m - accepted`` (which shrinks to O(1)
    near saturation) keeps the draw loop linear.
    """
    rate = accepted / attempts if attempts else 1.0
    need = m - accepted
    batch = int(need / max(rate, 0.01)) + 1
    return min(batch, max(4 * m, 1), budget - attempts)


def _zipf_draw_block(
    rng: np.random.Generator,
    batch: int,
    arity: int,
    positions: set[int],
    cumulative: np.ndarray,
    total: float,
    n: int,
) -> np.ndarray:
    """One ``(batch, arity)`` block: inverse-CDF on skewed positions."""
    block = np.empty((batch, arity), dtype=np.int64)
    for pos in range(arity):
        if pos in positions:
            block[:, pos] = np.searchsorted(
                cumulative, rng.random(batch) * total
            )
        else:
            block[:, pos] = rng.integers(0, n, size=batch)
    return block


def _zipf_relation_numpy(
    name: str,
    arity: int,
    m: int,
    n: int,
    skew: float,
    rng: np.random.Generator,
    skew_positions: Sequence[int] | None,
    max_attempts_factor: int,
) -> Relation:
    """Vectorized zipf draws: batched inverse-CDF, incremental dedup."""
    positions = set(range(arity) if skew_positions is None else skew_positions)
    cumulative, total = _zipf_cdf(n, skew)

    # ``drawn`` always holds only the distinct rows seen so far, in draw
    # order (matching the tuple-path semantics of "stop once m distinct
    # tuples exist"), so each merge touches O(m + batch) rows no matter
    # how many draws the skewed head forces us to discard.
    drawn = np.empty((0, arity), dtype=np.int64)
    attempts = 0
    budget = max_attempts_factor * m
    while len(drawn) < m and attempts < budget:
        batch = _zipf_batch_size(len(drawn), attempts, m, budget)
        attempts += batch
        block = _zipf_draw_block(
            rng, batch, arity, positions, cumulative, total, n
        )
        merged = np.concatenate([drawn, block], axis=0)
        ids, _ = encode_rows(merged)
        # Rows of ``drawn`` are distinct and precede the block, so first
        # occurrences keep them (and fresh block rows) in draw order.
        _, first_index = np.unique(ids, return_index=True)
        drawn = merged[np.sort(first_index)]
    return Relation.from_array(name, drawn[:m])


def _zipf_relation_storage(
    name: str,
    arity: int,
    m: int,
    n: int,
    skew: float,
    rng: np.random.Generator,
    skew_positions: Sequence[int] | None,
    max_attempts_factor: int,
    storage: StorageManager,
    chunk_rows: int | None,
) -> ChunkedRelation:
    """Spooled zipf draws: batched inverse-CDF, compact global dedup.

    Accepted rows go straight to the chunked spool in draw order.  The
    distinct-row check keeps packed 63-bit keys when the row width
    allows (8 bytes per distinct row), falling back to the full
    in-memory drawn-rows array otherwise.
    """
    positions = set(range(arity) if skew_positions is None else skew_positions)
    cumulative, total = _zipf_cdf(n, skew)
    out = ChunkedRelation(name, arity, storage=storage, chunk_rows=chunk_rows)

    value_bits = max(1, (n - 1).bit_length()) if n > 1 else 1
    if arity * value_bits > 63:
        # Rows do not pack exactly; reuse the in-memory dedup stream
        # and spool its result (correctness over footprint here).
        dense = _zipf_relation_numpy(
            name, arity, m, n, skew, rng, skew_positions, max_attempts_factor
        )
        out.append(dense.to_array())
        return out

    shifts = np.array(
        [(arity - 1 - pos) * value_bits for pos in range(arity)],
        dtype=np.int64,
    )
    seen = np.empty(0, dtype=np.int64)  # sorted packed keys
    attempts = 0
    budget = max_attempts_factor * m
    while len(out) < m and attempts < budget:
        batch = _zipf_batch_size(len(out), attempts, m, budget)
        attempts += batch
        block = _zipf_draw_block(
            rng, batch, arity, positions, cumulative, total, n
        )
        keys = (block << shifts[None, :]).sum(axis=1)
        # First occurrence of each key within the batch, in draw order.
        _, first_index = np.unique(keys, return_index=True)
        first_index.sort()
        fresh = first_index[
            ~np.isin(keys[first_index], seen, assume_unique=False)
        ]
        fresh = fresh[: m - len(out)]
        if len(fresh):
            out.append(block[fresh])
            seen = np.union1d(seen, keys[fresh])
    return out


def zipf_database(
    query: ConjunctiveQuery,
    m: int | Mapping[str, int],
    n: int,
    skew: float = 1.0,
    seed: int | random.Random = 0,
    backend: GeneratorBackend | None = None,
    storage: StorageManager | None = None,
    chunk_rows: int | None = None,
) -> Database:
    backend = resolve_generator_backend(backend)
    rng = (
        _np_rng(seed)
        if backend == "numpy" or storage is not None
        else _rng(seed)
    )
    sizes = _size_map(query, m)
    relations = [
        zipf_relation(
            atom.relation, atom.arity, sizes[atom.relation], n, skew, rng,
            backend=backend, storage=storage, chunk_rows=chunk_rows,
        )
        for atom in query.atoms
    ]
    return Database(relations, n)


def planted_heavy_hitter_database(
    query: ConjunctiveQuery,
    m: int | Mapping[str, int],
    n: int,
    variable: str,
    hitter_fraction: float = 1.0,
    hitter_value: int = 0,
    seed: int | random.Random = 0,
) -> Database:
    """Plant a single heavy hitter on ``variable`` in every atom using it.

    A ``hitter_fraction`` of each affected relation's tuples take
    ``hitter_value`` at the variable's position(s); the remaining
    attributes (and the remaining tuples) follow the matching
    construction, so all *other* values stay light.  With
    ``hitter_fraction=1.0`` this reproduces Example 4.1: every tuple of
    every relation joins on the same value.
    """
    if not 0.0 <= hitter_fraction <= 1.0:
        raise ValueError("hitter_fraction must be in [0, 1]")
    rng = _rng(seed)
    sizes = _size_map(query, m)
    relations = []
    for atom in query.atoms:
        size = sizes[atom.relation]
        positions = [
            i for i, v in enumerate(atom.variables) if v == variable
        ]
        if not positions:
            relations.append(
                # Pin the python stream: this generator draws from a
                # shared random.Random and must not change output when
                # the generator default flips.
                matching_relation(
                    atom.relation, atom.arity, size, n, rng,
                    backend="python",
                )
            )
            continue
        heavy_count = int(round(size * hitter_fraction))
        light_count = size - heavy_count
        # Distinct values for all non-planted coordinates.
        columns = [rng.sample(range(n), size) for _ in range(atom.arity)]
        tuples: set[tuple[int, ...]] = set()
        for row in range(heavy_count):
            tup = [columns[pos][row] for pos in range(atom.arity)]
            for pos in positions:
                tup[pos] = hitter_value
            tuples.add(tuple(tup))
        for row in range(heavy_count, heavy_count + light_count):
            tup = [columns[pos][row] for pos in range(atom.arity)]
            # Keep light tuples off the planted value.
            for pos in positions:
                if tup[pos] == hitter_value:
                    tup[pos] = (hitter_value + 1 + row) % n
            tuples.add(tuple(tup))
        relations.append(Relation(atom.relation, atom.arity, tuples))
    return Database(relations, n)


def degree_sequence_relation(
    name: str,
    arity: int,
    position: int,
    frequencies: Mapping[int, int],
    n: int,
    seed: int | random.Random = 0,
) -> Relation:
    """A relation realizing exact frequencies ``m_j(h)`` at ``position``.

    For each value ``h``, exactly ``frequencies[h]`` tuples carry ``h``
    at ``position``; every other attribute position is an injection
    across the whole relation (all other values have degree 1).  This
    realizes the x-statistics of Section 4.2 exactly.
    """
    if not 0 <= position < arity:
        raise IndexError("position out of range")
    total = sum(frequencies.values())
    if total > n:
        raise ValueError(
            f"degree sequence needs sum of frequencies <= n ({total} > {n})"
        )
    rng = _rng(seed)
    other_positions = [p for p in range(arity) if p != position]
    fresh = {p: rng.sample(range(n), total) for p in other_positions}
    tuples = []
    row = 0
    for value, count in sorted(frequencies.items()):
        if not 0 <= value < n:
            raise ValueError(f"value {value} outside domain [0, {n})")
        for _ in range(count):
            tup = [0] * arity
            tup[position] = value
            for p in other_positions:
                tup[p] = fresh[p][row]
            tuples.append(tuple(tup))
            row += 1
    return Relation(name, arity, tuples)


def degree_sequence_database(
    query: ConjunctiveQuery,
    variable: str,
    frequencies: Mapping[str, Mapping[int, int]],
    n: int,
    seed: int | random.Random = 0,
) -> Database:
    """A database realizing per-relation frequency vectors on ``variable``.

    Relations not mentioning ``variable`` must not appear in
    ``frequencies``; they are not generated (the star queries of
    Section 4.2 mention ``z`` in every atom).
    """
    rng = _rng(seed)
    relations = []
    for atom in query.atoms:
        if atom.relation not in frequencies:
            raise KeyError(f"no frequencies for relation {atom.relation!r}")
        if variable not in atom.variable_set:
            raise ValueError(
                f"atom {atom.relation} does not mention variable {variable!r}"
            )
        position = atom.variables.index(variable)
        relations.append(
            degree_sequence_relation(
                atom.relation,
                atom.arity,
                position,
                frequencies[atom.relation],
                n,
                rng,
            )
        )
    return Database(relations, n)


# --------------------------------------------------------------------------
# Graph families
# --------------------------------------------------------------------------


def layered_path_graph(
    num_layers: int, layer_size: int, seed: int | random.Random = 0
) -> tuple[list[tuple[int, int]], int]:
    """The Theorem 5.20 family: ``num_layers`` matchings between layers.

    Vertices are partitioned into ``num_layers + 1`` layers of
    ``layer_size`` vertices; consecutive layers are joined by a uniform
    random perfect matching.  The connected components are exactly
    ``layer_size`` vertex-disjoint paths, one per output tuple of the
    chain query ``L_{num_layers}``.  Returns ``(edges, num_vertices)``
    with vertex ids ``layer * layer_size + offset``.
    """
    if num_layers < 1 or layer_size < 1:
        raise ValueError("need at least one layer pair and one vertex per layer")
    rng = _rng(seed)
    edges: list[tuple[int, int]] = []
    for layer in range(num_layers):
        permutation = list(range(layer_size))
        rng.shuffle(permutation)
        base_left = layer * layer_size
        base_right = (layer + 1) * layer_size
        for offset, target in enumerate(permutation):
            edges.append((base_left + offset, base_right + target))
    return edges, (num_layers + 1) * layer_size


def layered_path_database(
    num_layers: int, layer_size: int, seed: int | random.Random = 0
) -> Database:
    """The layered graph packaged as an ``L_k`` chain-query database.

    Relation ``Sj`` holds the matching between layers ``j-1`` and ``j``,
    which is exactly how Theorem 5.20's reduction distributes the edges
    ("each server is given edges only from one relation").
    """
    edges, num_vertices = layered_path_graph(num_layers, layer_size, seed)
    per_layer: dict[int, list[tuple[int, int]]] = {}
    for u, v in edges:
        per_layer.setdefault(u // layer_size, []).append((u, v))
    relations = [
        Relation(f"S{layer + 1}", 2, per_layer[layer])
        for layer in range(num_layers)
    ]
    return Database(relations, num_vertices)


def random_graph_edges(
    num_vertices: int, num_edges: int, seed: int | random.Random = 0
) -> set[tuple[int, int]]:
    """A simple undirected graph as a set of ``(u, v)`` pairs with u < v."""
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise ValueError(f"at most {max_edges} simple edges on {num_vertices} vertices")
    rng = _rng(seed)
    edges: set[tuple[int, int]] = set()
    while len(edges) < num_edges:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u == v:
            continue
        edges.add((min(u, v), max(u, v)))
    return edges


def triangle_database_from_edges(
    edges: Iterable[tuple[int, int]], num_vertices: int
) -> Database:
    """Package an undirected graph for the triangle query ``C3``.

    All three relations hold the symmetric closure of the edge set, so
    each undirected triangle ``{a, b, c}`` appears as six directed
    answers of ``C3`` (all rotations and reflections).
    """
    symmetric = set()
    for u, v in edges:
        symmetric.add((u, v))
        symmetric.add((v, u))
    relations = [Relation(f"S{j}", 2, symmetric) for j in (1, 2, 3)]
    return Database(relations, num_vertices)


def _size_map(
    query: ConjunctiveQuery, m: int | Mapping[str, int]
) -> dict[str, int]:
    if isinstance(m, int):
        return {r: m for r in query.relation_names}
    missing = set(query.relation_names) - set(m)
    if missing:
        raise ValueError(f"missing sizes for {sorted(missing)}")
    return {r: int(m[r]) for r in query.relation_names}
