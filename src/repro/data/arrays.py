"""Fast row-wise primitives for ``(n, arity)`` integer arrays.

``np.unique(..., axis=0)`` sorts through a void-dtype view, which is
several times slower than a key-wise ``lexsort`` for the narrow int64
arrays relations are made of.  These helpers provide the two row
operations the columnar backend needs -- canonical deduplication and
dictionary encoding -- built on ``lexsort``, with a fast 1-column path.

All functions order rows lexicographically (first column primary),
matching ``np.unique(axis=0)`` and :meth:`Relation.to_array`'s canonical
layout.
"""

from __future__ import annotations

import numpy as np


def repeated_binding_filter(
    variables: "list[str] | tuple[str, ...]", rows: np.ndarray
) -> tuple[dict[str, int], np.ndarray | None]:
    """First column per variable, and a mask keeping consistent rows.

    For an atom binding ``variables`` positionally (repeats allowed),
    returns ``(first_position, mask)`` where ``first_position`` maps
    each distinct variable to its first column and ``mask`` flags the
    rows whose repeated-variable columns all agree (e.g. ``S(x, x)``
    keeps only rows with equal columns).  ``mask`` is ``None`` when no
    variable repeats, so callers can skip the row copy entirely.
    """
    first_position: dict[str, int] = {}
    mask: np.ndarray | None = None
    for position, variable in enumerate(variables):
        first = first_position.setdefault(variable, position)
        if first != position:
            agree = rows[:, first] == rows[:, position]
            mask = agree if mask is None else (mask & agree)
    return first_position, mask


def _row_order(rows: np.ndarray) -> np.ndarray:
    """Indices sorting rows lexicographically (first column primary)."""
    return np.lexsort(rows.T[::-1])


def _row_changed(sorted_rows: np.ndarray) -> np.ndarray:
    """Boolean mask: row i differs from row i-1 (first row counts as new)."""
    new = np.empty(len(sorted_rows), dtype=bool)
    new[0] = True
    np.any(sorted_rows[1:] != sorted_rows[:-1], axis=1, out=new[1:])
    return new


def unique_rows(rows: np.ndarray) -> np.ndarray:
    """Distinct rows in lexicographic order (fast ``unique(axis=0)``)."""
    rows = np.asarray(rows)
    if rows.ndim != 2:
        raise ValueError(f"need a 2-D (n, arity) array, got shape {rows.shape}")
    if len(rows) <= 1:
        return rows.copy()
    if rows.shape[1] == 1:
        return np.unique(rows[:, 0])[:, None]
    sorted_rows = rows[_row_order(rows)]
    return sorted_rows[_row_changed(sorted_rows)]


def unique_rows_with_counts(rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Distinct rows plus multiplicities, in lexicographic order."""
    rows = np.asarray(rows)
    if rows.ndim != 2:
        raise ValueError(f"need a 2-D (n, arity) array, got shape {rows.shape}")
    if len(rows) == 0:
        return rows.copy(), np.empty(0, dtype=np.int64)
    sorted_rows = rows[_row_order(rows)]
    starts = np.flatnonzero(_row_changed(sorted_rows))
    counts = np.diff(np.append(starts, len(sorted_rows)))
    return sorted_rows[starts], counts


def encode_rows(rows: np.ndarray) -> tuple[np.ndarray, int]:
    """Dictionary-encode rows: ``(ids, num_distinct)``.

    Equal rows receive equal ids in ``[0, num_distinct)``; ids follow
    the rows' lexicographic rank.  Equivalent to the ``return_inverse``
    of ``np.unique(axis=0)`` without materializing the distinct rows.
    """
    rows = np.asarray(rows)
    if rows.ndim != 2:
        raise ValueError(f"need a 2-D (n, arity) array, got shape {rows.shape}")
    n = len(rows)
    if n == 0:
        return np.empty(0, dtype=np.int64), 0
    if rows.shape[1] == 1:
        uniq, inverse = np.unique(rows[:, 0], return_inverse=True)
        return inverse.reshape(-1).astype(np.int64, copy=False), len(uniq)
    order = _row_order(rows)
    sorted_rows = rows[order]
    group_of_sorted = np.cumsum(_row_changed(sorted_rows)) - 1
    ids = np.empty(n, dtype=np.int64)
    ids[order] = group_of_sorted
    return ids, int(group_of_sorted[-1]) + 1
