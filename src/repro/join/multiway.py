"""Generic backtracking multiway join.

Evaluates a full conjunctive query over relation fragments by binding
variables one at a time in a fixed *variable order*.  For the variable
under consideration, the candidate set is the intersection of the value
sets offered by every atom containing it (restricted to the atom's
already-bound variables via a prefix hash index).  This is the standard
generic-join scheme; it is worst-case-optimal for a good variable order
and, more importantly here, obviously correct -- it serves as ground
truth for every parallel algorithm in the package.

Fragments may be given as :class:`~repro.data.relation.Relation` objects
or raw sets of tuples, so the same evaluator runs inside simulated MPC
servers (whose state is plain tuple sets).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core.query import Atom, ConjunctiveQuery
from repro.data.database import Database
from repro.data.relation import Relation

TupleSet = set[tuple[int, ...]]


def join_order(query: ConjunctiveQuery) -> tuple[str, ...]:
    """A connectivity-aware variable order.

    Starts from the variable occurring in the most atoms and grows by
    BFS over the primal graph, so consecutive variables share atoms
    whenever the query is connected (avoiding accidental Cartesian
    explosion mid-join).  Disconnected queries order each component in
    turn.
    """
    remaining = list(query.variables)
    if not remaining:
        return ()
    adjacency = query.adjacency()
    frequency = {v: len(query.atoms_of(v)) for v in remaining}
    order: list[str] = []
    placed: set[str] = set()
    while len(order) < len(remaining):
        frontier = [
            v
            for v in remaining
            if v not in placed and any(w in placed for w in adjacency[v])
        ]
        if not frontier:
            frontier = [v for v in remaining if v not in placed]
        best = max(frontier, key=lambda v: (frequency[v], -remaining.index(v)))
        order.append(best)
        placed.add(best)
    return tuple(order)


def _atom_tuple_bindings(
    atom: Atom, tuples: Iterable[tuple[int, ...]]
) -> list[dict[str, int]]:
    """Variable bindings of each tuple, dropping inconsistent repeats."""
    bindings = []
    for t in tuples:
        binding: dict[str, int] = {}
        consistent = True
        for variable, value in zip(atom.variables, t):
            if binding.setdefault(variable, value) != value:
                consistent = False
                break
        if consistent:
            bindings.append(binding)
    return bindings


class _AtomIndex:
    """Prefix indexes of one atom for a fixed variable order."""

    def __init__(self, atom: Atom, tuples: Iterable[tuple[int, ...]], order: Sequence[str]):
        self.atom = atom
        position = {v: i for i, v in enumerate(order)}
        self.ordered_vars = sorted(atom.variable_set, key=lambda v: position[v])
        bindings = _atom_tuple_bindings(atom, tuples)
        # For the variable at index d of ordered_vars: map from the
        # values of ordered_vars[:d] to the possible values of the next.
        self.levels: list[dict[tuple[int, ...], set[int]]] = []
        for depth, variable in enumerate(self.ordered_vars):
            level: dict[tuple[int, ...], set[int]] = {}
            prefix_vars = self.ordered_vars[:depth]
            for b in bindings:
                key = tuple(b[v] for v in prefix_vars)
                level.setdefault(key, set()).add(b[variable])
            self.levels.append(level)

    def candidates(
        self, variable: str, assignment: Mapping[str, int]
    ) -> set[int] | None:
        """Possible values of ``variable`` given bound earlier variables.

        Returns ``None`` when this atom does not constrain ``variable``
        at this point (it never occurs in the atom).
        """
        if variable not in self.atom.variable_set:
            return None
        depth = self.ordered_vars.index(variable)
        key = tuple(assignment[v] for v in self.ordered_vars[:depth])
        return self.levels[depth].get(key, set())


def evaluate_on_fragments(
    query: ConjunctiveQuery,
    fragments: Mapping[str, Iterable[tuple[int, ...]]],
    order: Sequence[str] | None = None,
) -> TupleSet:
    """Evaluate ``query`` over raw tuple sets keyed by relation name.

    The output tuples list values in ``query.variables`` order (the
    query head).  Missing relations are treated as empty.  Queries with
    isolated variables cannot be evaluated (they are contraction
    residues, not executable queries).
    """
    if query.isolated_variables:
        raise ValueError("cannot evaluate a query with isolated variables")
    if query.num_atoms == 0:
        return {()}
    chosen = tuple(order) if order is not None else join_order(query)
    if set(chosen) != set(query.variables) or len(chosen) != query.num_variables:
        raise ValueError("order must be a permutation of the query variables")
    indexes = [
        _AtomIndex(atom, fragments.get(atom.relation, ()), chosen)
        for atom in query.atoms
    ]
    head = query.variables
    results: TupleSet = set()
    assignment: dict[str, int] = {}

    def recurse(depth: int) -> None:
        if depth == len(chosen):
            results.add(tuple(assignment[v] for v in head))
            return
        variable = chosen[depth]
        candidate_set: set[int] | None = None
        for index in indexes:
            cands = index.candidates(variable, assignment)
            if cands is None:
                continue
            if candidate_set is None:
                candidate_set = set(cands)
            else:
                candidate_set &= cands
            if not candidate_set:
                return
        if candidate_set is None:
            raise ValueError(
                f"variable {variable!r} occurs in no atom; query is not full"
            )
        for value in candidate_set:
            assignment[variable] = value
            recurse(depth + 1)
        del assignment[variable]

    recurse(0)
    return results


def evaluate(
    query: ConjunctiveQuery,
    database: Database,
    order: Sequence[str] | None = None,
) -> TupleSet:
    """Evaluate ``query`` over a :class:`Database` (single-node truth)."""
    database.validate_for(query)
    fragments = {
        atom.relation: database[atom.relation].tuples for atom in query.atoms
    }
    return evaluate_on_fragments(query, fragments, order)


def output_relation(
    query: ConjunctiveQuery, tuples: TupleSet, name: str = "q"
) -> Relation:
    """Package query answers as a relation with the head schema."""
    return Relation(name, max(1, query.num_variables), tuples)
