"""Binary hash joins over schema-tagged tuple sets.

Used by the baseline algorithms (standard parallel hash join,
broadcast join) and by the bushy multi-round plans, which materialize
intermediate results whose schema is the union of their children's
variables (full conjunctive queries never project).
"""

from __future__ import annotations

from typing import Iterable, Sequence

TupleSet = set[tuple[int, ...]]
Schema = tuple[str, ...]


def merge_schemas(left: Schema, right: Schema) -> Schema:
    """Left schema followed by the right's new variables."""
    seen = set(left)
    return tuple(left) + tuple(v for v in right if v not in seen)


def hash_join(
    left: Iterable[tuple[int, ...]],
    left_schema: Sequence[str],
    right: Iterable[tuple[int, ...]],
    right_schema: Sequence[str],
) -> tuple[TupleSet, Schema]:
    """Natural join of two tagged tuple sets on their shared variables.

    Returns ``(tuples, schema)`` where the schema is
    :func:`merge_schemas` of the inputs.  With no shared variables this
    degenerates to the Cartesian product.
    """
    left_schema = tuple(left_schema)
    right_schema = tuple(right_schema)
    shared = [v for v in left_schema if v in set(right_schema)]
    left_key = [left_schema.index(v) for v in shared]
    right_key = [right_schema.index(v) for v in shared]
    right_extra = [
        i for i, v in enumerate(right_schema) if v not in set(left_schema)
    ]

    index: dict[tuple[int, ...], list[tuple[int, ...]]] = {}
    for t in right:
        key = tuple(t[i] for i in right_key)
        index.setdefault(key, []).append(t)

    out: TupleSet = set()
    for t in left:
        key = tuple(t[i] for i in left_key)
        for match in index.get(key, ()):
            out.add(tuple(t) + tuple(match[i] for i in right_extra))
    return out, merge_schemas(left_schema, right_schema)


def project(
    tuples: Iterable[tuple[int, ...]],
    schema: Sequence[str],
    onto: Sequence[str],
) -> TupleSet:
    """Project tagged tuples onto a sub-schema (set semantics)."""
    schema = tuple(schema)
    positions = [schema.index(v) for v in onto]
    return {tuple(t[i] for i in positions) for t in tuples}


def reorder(
    tuples: Iterable[tuple[int, ...]],
    schema: Sequence[str],
    target: Sequence[str],
) -> TupleSet:
    """Rewrite tuples from one column order to another (same variables)."""
    schema = tuple(schema)
    if set(schema) != set(target) or len(schema) != len(target):
        raise ValueError(f"schemas {schema} and {tuple(target)} differ")
    positions = [schema.index(v) for v in target]
    return {tuple(t[i] for i in positions) for t in tuples}
