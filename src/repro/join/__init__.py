"""Local join evaluation (the free computation phase of the MPC model).

Every MPC algorithm's per-server "computation phase" must actually
compute the query on its local fragment.  :func:`evaluate` is a generic
backtracking multiway join (in the spirit of worst-case-optimal joins,
with per-atom prefix indexes), used both as the in-server evaluator and
as the single-node ground truth that all parallel outputs are checked
against.  :mod:`repro.join.binary` adds textbook hash joins for the
baseline algorithms.
"""

from repro.join.multiway import evaluate, evaluate_on_fragments, join_order
from repro.join.binary import hash_join, merge_schemas
from repro.join.vectorized import (
    UnsupportedVectorizedQuery,
    evaluate_arrays,
    join_arrays,
)

__all__ = [
    "evaluate",
    "evaluate_on_fragments",
    "join_order",
    "hash_join",
    "merge_schemas",
    "UnsupportedVectorizedQuery",
    "evaluate_arrays",
    "join_arrays",
]
