"""Vectorized multiway join over columnar (ndarray) fragments.

The columnar execution backend's local computation phase: evaluate a
full conjunctive query over ``(n, arity)`` integer arrays keyed by
relation name, entirely with NumPy primitives.  The plan is a greedy
left-deep sequence of binary hash joins -- each step joins the running
intermediate (an array plus its variable schema) with the next atom
sharing a variable, falling back to a cross product only when the
residual query is disconnected from the atoms joined so far.

Equality joins use dictionary encoding: the composite join keys of both
sides are encoded into one id space with :func:`numpy.unique`, matching
rows are enumerated with ``bincount``/``cumsum`` offset arithmetic, and
set semantics are restored with a final row-wise ``unique``.  This is
the standard sort-based vectorization of a hash join (O(n log n), no
Python-level per-tuple work).

Queries the vectorized planner cannot handle raise
:class:`UnsupportedVectorizedQuery`; callers (the HyperCube columnar
backend) fall back to the backtracking join of
:mod:`repro.join.multiway` for those.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.query import Atom, ConjunctiveQuery
from repro.data.arrays import encode_rows, repeated_binding_filter, unique_rows


class UnsupportedVectorizedQuery(Exception):
    """The vectorized planner cannot evaluate this query; fall back."""


def atom_projection(atom: Atom, rows: np.ndarray) -> tuple[np.ndarray, tuple[str, ...]]:
    """Consistent rows of ``rows`` projected to the atom's distinct variables.

    Rows that bind a repeated variable to two different values (e.g.
    ``S(x, x)`` with row ``(1, 2)``) match nothing and are dropped; the
    surviving rows keep one column per distinct variable, in first
    occurrence order.
    """
    if rows.ndim != 2 or rows.shape[1] != atom.arity:
        raise ValueError(
            f"fragment for {atom.relation} has shape {rows.shape}, "
            f"expected (n, {atom.arity})"
        )
    first_position, mask = repeated_binding_filter(atom.variables, rows)
    if mask is not None:
        rows = rows[mask]
    schema = tuple(first_position)
    projected = rows[:, [first_position[v] for v in schema]]
    if len(schema) < atom.arity:
        # Dropping repeated columns can introduce duplicate rows; later
        # joins assume duplicate-free inputs (natural join of sets).
        projected = unique_rows(projected)
    return np.ascontiguousarray(projected.astype(np.int64, copy=False)), schema


def _encode_keys(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int]:
    """Dictionary-encode both sides' composite keys into one id space."""
    stacked = np.concatenate([left_keys, right_keys], axis=0)
    ids, num_keys = encode_rows(stacked)
    return ids[: len(left_keys)], ids[len(left_keys):], num_keys


def join_arrays(
    left: np.ndarray,
    left_schema: tuple[str, ...],
    right: np.ndarray,
    right_schema: tuple[str, ...],
) -> tuple[np.ndarray, tuple[str, ...]]:
    """Natural join of two schema-tagged arrays on their shared variables.

    Returns ``(rows, schema)`` with the left schema followed by the
    right's new variables (the vectorized analogue of
    :func:`repro.join.binary.hash_join`).  With no shared variables this
    degenerates to the cross product.
    """
    shared = [v for v in left_schema if v in set(right_schema)]
    right_new = [i for i, v in enumerate(right_schema) if v not in set(left_schema)]
    out_schema = tuple(left_schema) + tuple(right_schema[i] for i in right_new)
    width = len(out_schema)

    if len(left) == 0 or len(right) == 0:
        return np.empty((0, width), dtype=np.int64), out_schema

    if not shared:
        rows = np.hstack(
            [
                np.repeat(left, len(right), axis=0),
                np.tile(right[:, right_new], (len(left), 1)),
            ]
        )
        return rows, out_schema

    left_ids, right_ids, num_keys = _encode_keys(
        left[:, [left_schema.index(v) for v in shared]],
        right[:, [right_schema.index(v) for v in shared]],
    )
    # Group the right side by key id, then enumerate every (left row,
    # matching right row) pair with pure offset arithmetic.
    right_order = np.argsort(right_ids, kind="stable")
    group_sizes = np.bincount(right_ids, minlength=num_keys)
    group_starts = np.concatenate([[0], np.cumsum(group_sizes)[:-1]])

    matches_per_left = group_sizes[left_ids]
    total = int(matches_per_left.sum())
    if total == 0:
        return np.empty((0, width), dtype=np.int64), out_schema
    left_rows = np.repeat(np.arange(len(left)), matches_per_left)
    pair_starts = np.concatenate([[0], np.cumsum(matches_per_left)[:-1]])
    within = np.arange(total) - np.repeat(pair_starts, matches_per_left)
    right_rows = right_order[
        np.repeat(group_starts[left_ids], matches_per_left) + within
    ]
    rows = np.hstack([left[left_rows], right[right_rows][:, right_new]])
    return rows, out_schema


def evaluate_arrays(
    query: ConjunctiveQuery, fragments: Mapping[str, np.ndarray]
) -> np.ndarray:
    """Evaluate ``query`` over array fragments keyed by relation name.

    Returns the distinct answers as a ``(n, k)`` int64 array whose
    columns follow ``query.variables`` (the head order).  Missing
    relations are treated as empty.  Raises
    :class:`UnsupportedVectorizedQuery` for queries outside the
    vectorized planner's scope (currently: queries with isolated
    variables, which no join plan can bind).
    """
    if query.isolated_variables:
        raise UnsupportedVectorizedQuery(
            "queries with isolated variables have no executable join plan"
        )
    head = query.variables
    if query.num_atoms == 0:
        return np.empty((1, 0), dtype=np.int64)

    prepared: list[tuple[np.ndarray, tuple[str, ...]]] = []
    for atom in query.atoms:
        rows = fragments.get(atom.relation)
        if rows is None:
            rows = np.empty((0, atom.arity), dtype=np.int64)
        prepared.append(atom_projection(atom, np.asarray(rows)))

    # Greedy left-deep order: always prefer an atom sharing a variable
    # with the current schema (connected growth avoids mid-join
    # Cartesian blowup); fall back to a cross product between
    # components.
    remaining = list(range(len(prepared)))
    current, schema = prepared[remaining.pop(0)]
    while remaining:
        bound = set(schema)
        choice = next(
            (
                idx
                for idx in remaining
                if bound & set(prepared[idx][1])
            ),
            remaining[0],
        )
        remaining.remove(choice)
        current, schema = join_arrays(current, schema, *prepared[choice])
        if len(current) == 0:
            return np.empty((0, len(head)), dtype=np.int64)

    answers = current[:, [schema.index(v) for v in head]]
    return unique_rows(answers)
